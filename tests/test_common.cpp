// Unit tests for the common substrate: ids, rng, strings, stats, expected.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/expected.hpp"
#include "common/logging.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace vdce::common {
namespace {

// ---- ids --------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  HostId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), HostId::kInvalid);
}

TEST(Ids, ValueRoundTrip) {
  SiteId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  TaskId a(1), b(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TaskId(1));
  EXPECT_NE(a, b);
}

TEST(Ids, Hashable) {
  std::unordered_set<HostId> set;
  set.insert(HostId(1));
  set.insert(HostId(2));
  set.insert(HostId(1));
  EXPECT_EQ(set.size(), 2u);
}

// ---- expected ------------------------------------------------------------------

TEST(Expected, HoldsValue) {
  Expected<int> e(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 7);
  EXPECT_EQ(e.value_or(9), 7);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Error{ErrorCode::kNotFound, "missing"});
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(e.value_or(9), 9);
  EXPECT_EQ(e.error().to_string(), "not_found: missing");
}

TEST(Expected, StatusDefaultsToOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status err(Error{ErrorCode::kTimeout, "t"});
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kTimeout);
}

TEST(Expected, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kAuthFailed), "auth_failed");
  EXPECT_STREQ(to_string(ErrorCode::kCycleDetected), "cycle_detected");
  EXPECT_STREQ(to_string(ErrorCode::kNoFeasibleResource),
               "no_feasible_resource");
}

// ---- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3}));
}

TEST(Rng, NormalRespectsFloor) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal(0.0, 10.0, 0.5), 0.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkDivergesFromParent) {
  Rng a(7);
  Rng child = a.fork();
  // The child stream should not reproduce the parent's next values.
  Rng b(7);
  (void)b.uniform(0, 1);  // advance identically to a.fork()'s draw
  bool all_equal = true;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform(0, 1) != b.uniform(0, 1)) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, PickIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.pick_index(7), 7u);
}

// ---- strings -----------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  auto parts = split_ws("  one\t two \n three  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("  -2 ").value(), -2.0);
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_FALSE(parse_int("42.5").has_value());
}

TEST(Strings, ParseUintHandlesLargeValues) {
  EXPECT_EQ(parse_uint("18446744073709551615").value(),
            18446744073709551615ULL);
  EXPECT_FALSE(parse_uint("-1").has_value());
}

TEST(Strings, EscapeRoundTrip) {
  std::string nasty = "a|b\\c\nd";
  auto escaped = escape_field(nasty);
  EXPECT_EQ(escaped.find('|'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(unescape_field(escaped).value(), nasty);
}

TEST(Strings, UnescapeRejectsDangling) {
  EXPECT_FALSE(unescape_field("abc\\").has_value());
  EXPECT_FALSE(unescape_field("ab\\q").has_value());
}

TEST(Strings, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_bytes(2048), "2.00KB");
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("matrix.lu", "matrix."));
  EXPECT_FALSE(starts_with("mat", "matrix"));
  EXPECT_TRUE(ends_with("file.afg", ".afg"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

// ---- stats --------------------------------------------------------------------

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, PercentileNearestRank) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Stats, SummaryMentionsCount) {
  Stats s;
  s.add(1.0);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
  Stats empty;
  EXPECT_EQ(empty.summary(), "n=0");
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.5);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
}

// ---- logging -------------------------------------------------------------------

TEST(Logging, LevelGatingAndOrdering) {
  Logger& logger = Logger::instance();
  LogLevel previous = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(previous);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logging, LogLineIsCheapWhenDisabled) {
  Logger::instance().set_level(LogLevel::kOff);
  // Must not crash or emit; streaming into a disabled line is a no-op.
  VDCE_LOG(kInfo, "test", 1.0) << "invisible " << 42;
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.add(1.5);
  h.add(-1.0);
  std::string rendered = h.render(10);
  EXPECT_NE(rendered.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(rendered.find("underflow: 1"), std::string::npos);
}

// ---- time ---------------------------------------------------------------------

TEST(Time, UnitHelpers) {
  EXPECT_DOUBLE_EQ(seconds(2), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(1500), 1.5);
  EXPECT_DOUBLE_EQ(microseconds(1e6), 1.0);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
}

TEST(Time, CloseComparison) {
  EXPECT_TRUE(time_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_close(1.0, 1.001));
}

}  // namespace
}  // namespace vdce::common
