// Unit tests for the Application Editor substitute: builder, DSL, panels.
#include <gtest/gtest.h>

#include <filesystem>

#include "editor/app_store.hpp"
#include "editor/builder.hpp"
#include "editor/dsl.hpp"
#include "editor/panels.hpp"
#include "tasklib/registry.hpp"

namespace vdce::editor {
namespace {

TEST(Builder, FluentTaskConfiguration) {
  AppBuilder app("demo");
  auto lu = app.task("LU", "matrix.lu_decomposition")
                .parallel(2)
                .prefer_machine_type("SUN solaris")
                .input_file("/users/VDCE/user_k/matrix_A.dat", 124880)
                .output_data(8e5)
                .request_service("visualization");
  const afg::TaskNode& node = app.graph().task(lu.id());
  EXPECT_EQ(node.props.mode, afg::ComputationMode::kParallel);
  EXPECT_EQ(node.props.num_nodes, 2);
  EXPECT_EQ(node.props.preferred_machine_type, "SUN solaris");
  ASSERT_EQ(node.in_ports(), 1);
  EXPECT_DOUBLE_EQ(node.props.inputs[0].size_bytes, 124880.0);
  EXPECT_EQ(node.props.services.size(), 1u);
}

TEST(Builder, LinkAppendsDataflowPort) {
  AppBuilder app("demo");
  auto a = app.task("a", "synthetic.w100").output_data(1000);
  auto b = app.task("b", "synthetic.w100");
  auto port = app.link(a, b);
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 0);
  auto port2 = app.link(a, b);  // second edge gets the next port
  ASSERT_TRUE(port2.has_value());
  EXPECT_EQ(*port2, 1);
  auto graph = app.build();
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->edges().size(), 2u);
}

TEST(Builder, LinkCreatesDefaultOutputPort) {
  AppBuilder app("demo");
  auto a = app.task("a", "synthetic.w100");  // no explicit output
  auto b = app.task("b", "synthetic.w100");
  ASSERT_TRUE(app.link(a, b).has_value());
  EXPECT_EQ(app.graph().task(a.id()).out_ports(), 1);
}

TEST(Builder, BuildValidates) {
  AppBuilder app("demo");
  EXPECT_FALSE(app.build().has_value());  // empty graph
}

TEST(Builder, DuplicateInstanceViaTryTask) {
  AppBuilder app("demo");
  (void)app.task("a", "x");
  EXPECT_FALSE(app.try_task("a", "y").has_value());
}

TEST(Builder, SequentialResetsNodes) {
  AppBuilder app("demo");
  auto t = app.task("a", "x").parallel(4).sequential();
  EXPECT_EQ(app.graph().task(t.id()).props.num_nodes, 1);
}

// ---- DSL ---------------------------------------------------------------------

const char* kSolverDsl = R"(
# Figure 1: Linear Equation Solver
application "Linear Equation Solver"

task LU_Decomposition matrix.lu_decomposition {
  mode parallel
  nodes 2
  machine_type any
  machine any
  input file /users/VDCE/user_k/matrix_A.dat 124880
  output data 800000
}

task Matrix_Multiplication matrix.multiply {
  mode sequential
  nodes 1
  machine_type "SUN solaris"
  machine "hunding.top.cis.syr.edu"
  input file /users/VDCE/user_k/matrix_B.dat 124880
  input file /users/VDCE/user_k/matrix_C.dat 124880
  output file /users/VDCE/user_k/vector_X.dat 8000
}

connect LU_Decomposition:0 -> Matrix_Multiplication:0
)";

TEST(Dsl, ParsesFigure1Panels) {
  auto graph = parse_afg(kSolverDsl);
  ASSERT_TRUE(graph.has_value()) << graph.error().message;
  EXPECT_EQ(graph->name(), "Linear Equation Solver");
  EXPECT_EQ(graph->task_count(), 2u);
  auto lu = graph->find_task("LU_Decomposition").value();
  EXPECT_EQ(graph->task(lu).props.mode, afg::ComputationMode::kParallel);
  EXPECT_EQ(graph->task(lu).props.num_nodes, 2);
  auto mm = graph->find_task("Matrix_Multiplication").value();
  EXPECT_EQ(graph->task(mm).props.preferred_machine_type, "SUN solaris");
  EXPECT_EQ(graph->task(mm).props.preferred_machine, "hunding.top.cis.syr.edu");
  ASSERT_EQ(graph->edges().size(), 1u);
  // The connected port became dataflow.
  EXPECT_TRUE(graph->task(mm).props.inputs[0].dataflow);
  EXPECT_FALSE(graph->task(mm).props.inputs[1].dataflow);
}

TEST(Dsl, RoundTripPreservesStructure) {
  auto original = parse_afg(kSolverDsl);
  ASSERT_TRUE(original.has_value());
  std::string text = write_afg(*original);
  auto reparsed = parse_afg(text);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  EXPECT_EQ(reparsed->name(), original->name());
  EXPECT_EQ(reparsed->task_count(), original->task_count());
  ASSERT_EQ(reparsed->edges().size(), original->edges().size());
  for (std::size_t i = 0; i < original->edges().size(); ++i) {
    EXPECT_EQ(reparsed->edges()[i], original->edges()[i]);
  }
  for (const afg::TaskNode& t : original->tasks()) {
    auto id = reparsed->find_task(t.instance_name);
    ASSERT_TRUE(id.has_value());
    const afg::TaskNode& r = reparsed->task(*id);
    EXPECT_EQ(r.task_name, t.task_name);
    EXPECT_EQ(r.props.mode, t.props.mode);
    EXPECT_EQ(r.props.num_nodes, t.props.num_nodes);
    EXPECT_EQ(r.props.preferred_machine, t.props.preferred_machine);
    EXPECT_EQ(r.in_ports(), t.in_ports());
    EXPECT_EQ(r.out_ports(), t.out_ports());
  }
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  auto missing_app = parse_afg("task a x {\n}\n");
  ASSERT_FALSE(missing_app.has_value());

  auto bad_mode = parse_afg(
      "application x\ntask a impl {\n  mode sideways\n}\n");
  ASSERT_FALSE(bad_mode.has_value());
  EXPECT_NE(bad_mode.error().message.find("line 3"), std::string::npos);

  auto bad_connect = parse_afg(
      "application x\ntask a impl {\n  output data 10\n}\nconnect a:0 b:0\n");
  ASSERT_FALSE(bad_connect.has_value());
  EXPECT_NE(bad_connect.error().message.find("line 5"), std::string::npos);
}

TEST(Dsl, RejectsUnterminatedBlock) {
  auto r = parse_afg("application x\ntask a impl {\n  mode sequential\n");
  ASSERT_FALSE(r.has_value());
}

TEST(Dsl, RejectsUnknownDirective) {
  auto r = parse_afg("application x\nfrobnicate\n");
  ASSERT_FALSE(r.has_value());
}

TEST(Dsl, RejectsConnectToUnknownTask) {
  auto r = parse_afg(
      "application x\ntask a impl {\n  output data 1\n}\n"
      "connect a:0 -> ghost:0\n");
  ASSERT_FALSE(r.has_value());
}

TEST(Dsl, CommentsAndBlankLinesIgnored) {
  auto r = parse_afg(
      "# leading comment\n\napplication x\n\n# another\ntask a impl {\n}\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->task_count(), 1u);
}

// ---- panels ---------------------------------------------------------------------

TEST(Panels, PropertiesPanelMentionsFigure1Fields) {
  auto graph = parse_afg(kSolverDsl);
  ASSERT_TRUE(graph.has_value());
  auto lu = graph->find_task("LU_Decomposition").value();
  std::string panel = render_properties_panel(*graph, lu);
  EXPECT_NE(panel.find("Task <LU_Decomposition>"), std::string::npos);
  EXPECT_NE(panel.find("Computation Type: <parallel>"), std::string::npos);
  EXPECT_NE(panel.find("Number of Nodes: 2"), std::string::npos);
  EXPECT_NE(panel.find("Preferred Machine Type: <any>"), std::string::npos);
  EXPECT_NE(panel.find("matrix_A.dat, SIZE=124880"), std::string::npos);
}

TEST(Panels, PanelShowsDataflowConsumers) {
  auto graph = parse_afg(kSolverDsl);
  auto lu = graph->find_task("LU_Decomposition").value();
  std::string panel = render_properties_panel(*graph, lu);
  EXPECT_NE(panel.find("Matrix_Multiplication"), std::string::npos);
}

TEST(Panels, AfgSummaryListsTasksAndEdges) {
  auto graph = parse_afg(kSolverDsl);
  std::string summary = render_afg_summary(*graph);
  EXPECT_NE(summary.find("tasks: 2, edges: 1"), std::string::npos);
  EXPECT_NE(summary.find("LU_Decomposition"), std::string::npos);
  EXPECT_NE(summary.find("-> Matrix_Multiplication"), std::string::npos);
}

TEST(Panels, LibraryMenuListsTasks) {
  tasklib::TaskRegistry registry;
  tasklib::register_standard_libraries(registry);
  std::string menu = render_library_menu(registry, "matrix");
  EXPECT_NE(menu.find("matrix.lu_decomposition"), std::string::npos);
  EXPECT_NE(menu.find("MFLOP"), std::string::npos);
}

// ---- application store ------------------------------------------------------

afg::Afg stored_app(const std::string& name) {
  AppBuilder builder(name);
  auto a = builder.task("a", "synthetic.w100").output_data(1000);
  auto b = builder.task("b", "synthetic.w200");
  EXPECT_TRUE(builder.link(a, b).has_value());
  return builder.build().value();
}

TEST(AppStore, SaveLoadList) {
  AppStore store;
  ASSERT_TRUE(store.save("user_k", stored_app("solver")).ok());
  ASSERT_TRUE(store.save("user_k", stored_app("pipeline")).ok());
  ASSERT_TRUE(store.save("other", stored_app("solver")).ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.list("user_k"),
            (std::vector<std::string>{"pipeline", "solver"}));
  auto loaded = store.load("user_k", "solver");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->task_count(), 2u);
  EXPECT_FALSE(store.load("user_k", "ghost").has_value());
  EXPECT_FALSE(store.load("ghost", "solver").has_value());
}

TEST(AppStore, SaveReplacesAndValidates) {
  AppStore store;
  ASSERT_TRUE(store.save("u", stored_app("x")).ok());
  ASSERT_TRUE(store.save("u", stored_app("x")).ok());  // replace, no dup
  EXPECT_EQ(store.size(), 1u);
  afg::Afg invalid("broken");  // empty graph fails validation
  EXPECT_FALSE(store.save("u", invalid).ok());
  EXPECT_FALSE(store.save("", stored_app("x")).ok());
}

TEST(AppStore, Remove) {
  AppStore store;
  ASSERT_TRUE(store.save("u", stored_app("x")).ok());
  EXPECT_TRUE(store.remove("u", "x").ok());
  EXPECT_FALSE(store.remove("u", "x").ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(AppStore, DirectoryRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "vdce_appstore_test").string();
  std::filesystem::remove_all(dir);

  AppStore store;
  ASSERT_TRUE(store.save("user_k", stored_app("My Solver")).ok());
  ASSERT_TRUE(store.save("other", stored_app("b")).ok());
  ASSERT_TRUE(store.save_to(dir).ok());
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "user_k" /
                                      "My_Solver.afg"));

  auto restored = AppStore::load_from(dir);
  ASSERT_TRUE(restored.has_value()) << restored.error().message;
  EXPECT_EQ(restored->size(), 2u);
  auto loaded = restored->load("user_k", "My Solver");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->task_count(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(AppStore, LoadFromMissingDirectoryFails) {
  EXPECT_FALSE(AppStore::load_from("/nonexistent/vdce_apps").has_value());
}

}  // namespace
}  // namespace vdce::editor
