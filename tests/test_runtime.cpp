// Runtime tests: the Fig. 4 monitoring pipeline (monitor -> group manager ->
// site manager), echo-based failure detection, and the services.
#include <gtest/gtest.h>

#include "runtime/services.hpp"
#include "tasklib/matrix.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce::runtime {
namespace {

EnvironmentOptions quiet_options() {
  EnvironmentOptions options;
  options.runtime.monitor_period = 1.0;
  options.runtime.echo_period = 2.0;
  options.runtime.significant_change = 0.15;
  return options;
}

TEST(Monitoring, WorkloadReachesResourceDb) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  common::HostId h = env.topology().site(common::SiteId(0)).hosts[2];
  env.topology().set_cpu_load(h, 1.7);
  env.run_for(5.0);
  auto rec = env.repo(common::SiteId(0)).resources().find(h);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->workload_history.empty());
  EXPECT_NEAR(rec->current_load(), 1.7, 0.2);
}

TEST(Monitoring, SignificantChangeFilterSuppressesStableLoads) {
  auto options = quiet_options();
  options.runtime.measurement_noise = 0.0;  // perfectly stable samples
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  env.run_for(30.0);
  const auto& by_type = env.fabric().stats().sent_by_type;
  ASSERT_TRUE(by_type.contains("mon.report"));
  ASSERT_TRUE(by_type.contains("gm.report"));
  // With constant loads only the first report per host is significant.
  EXPECT_GT(by_type.at("mon.report"), 10 * by_type.at("gm.report"));
}

TEST(Monitoring, ZeroThresholdForwardsEverything) {
  auto options = quiet_options();
  options.runtime.significant_change = 0.0;
  options.runtime.measurement_noise = 0.01;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  env.run_for(20.0);
  const auto& by_type = env.fabric().stats().sent_by_type;
  // Every monitor report with any noise at all is "significant".
  EXPECT_GE(by_type.at("gm.report"), by_type.at("mon.report") / 2);
}

TEST(FailureDetection, EchoTimeoutMarksHostDown) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  env.run_for(5.0);
  // Pick a non-leader, non-server machine and kill it.
  common::HostId victim = env.topology().site(common::SiteId(0)).hosts[1];
  env.topology().set_host_up(victim, false);
  env.run_for(10.0);  // a few echo rounds
  auto rec = env.repo(common::SiteId(0)).resources().find(victim);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->up);
}

TEST(FailureDetection, DetectionLatencyWithinTwoEchoPeriods) {
  auto options = quiet_options();
  options.runtime.echo_period = 1.0;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  env.run_for(3.0);
  common::HostId victim = env.topology().site(common::SiteId(0)).hosts[1];
  env.topology().set_host_up(victim, false);
  double killed_at = env.now();
  // Step until the db notices.
  double detected_at = -1.0;
  for (int i = 0; i < 100 && detected_at < 0; ++i) {
    env.run_for(0.25);
    auto rec = env.repo(common::SiteId(0)).resources().find(victim);
    if (rec && !rec->up) detected_at = env.now();
  }
  ASSERT_GT(detected_at, 0.0);
  EXPECT_LE(detected_at - killed_at, 2.5 * options.runtime.echo_period);
}

TEST(FailureDetection, RecoveryMarksHostBackUp) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  common::HostId victim = env.topology().site(common::SiteId(0)).hosts[1];
  env.topology().set_host_up(victim, false);
  env.run_for(10.0);
  ASSERT_FALSE(env.repo(common::SiteId(0)).resources().find(victim)->up);
  env.topology().set_host_up(victim, true);
  // Nudge the load so the next monitor report passes the change filter.
  env.topology().set_cpu_load(victim, 1.0);
  env.run_for(10.0);
  EXPECT_TRUE(env.repo(common::SiteId(0)).resources().find(victim)->up);
}

TEST(FailureDetection, HostDownBroadcastReachesPeerSites) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  common::HostId victim = env.topology().site(common::SiteId(0)).hosts[1];
  env.topology().set_host_up(victim, false);
  env.run_for(10.0);
  EXPECT_GE(env.fabric().stats().sent_by_type.count("sm.host_down"), 1u);
}

// ---- services -----------------------------------------------------------------

TEST(ObjectStore, PutGet) {
  ObjectStore store;
  store.put("/users/VDCE/u/m.dat", tasklib::Value(42), 1000);
  auto obj = store.get("/users/VDCE/u/m.dat");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(std::any_cast<int>(obj->value), 42);
  EXPECT_DOUBLE_EQ(obj->size_bytes, 1000.0);
  EXPECT_FALSE(store.get("/nope").has_value());
}

TEST(ObjectStore, UrlDetection) {
  EXPECT_TRUE(ObjectStore::is_url("http://data.example/x"));
  EXPECT_TRUE(ObjectStore::is_url("https://data.example/x"));
  EXPECT_FALSE(ObjectStore::is_url("/users/VDCE/x"));
}

TEST(Visualization, CollectsWorkloadSamples) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  VisualizationService viz(env.core());
  viz.start(0.5);
  env.topology().set_cpu_load(env.topology().site(common::SiteId(0)).hosts[0],
                              2.0);
  env.run_for(5.0);
  viz.stop();
  EXPECT_GE(viz.samples().size(), 9u);
  std::string rendered = viz.render_workload();
  EXPECT_NE(rendered.find("host 0"), std::string::npos);
}

TEST(Visualization, EmptyRender) {
  VdceEnvironment env(make_campus_pair(), quiet_options());
  env.bring_up();
  VisualizationService viz(env.core());
  EXPECT_EQ(viz.render_workload(), "(no workload samples)\n");
}

// ---- background load generator ---------------------------------------------------

TEST(LoadGenerator, PerturbsLoadsAroundMean) {
  auto options = quiet_options();
  options.background_load = true;
  options.load.mean_load = 0.5;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  env.run_for(60.0);
  double total = 0.0;
  for (const net::Host& h : env.topology().hosts()) {
    EXPECT_GE(h.state.cpu_load, 0.0);
    total += h.state.cpu_load;
  }
  double mean = total / static_cast<double>(env.topology().host_count());
  EXPECT_NEAR(mean, 0.5, 0.35);
}

TEST(LoadGenerator, SpikeDecays) {
  auto options = quiet_options();
  options.background_load = true;
  options.load.volatility = 0.0;
  options.load.reversion = 0.0;
  options.load.mean_load = 0.0;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  common::HostId h = env.topology().site(common::SiteId(0)).hosts[0];
  double before = env.topology().host(h).state.cpu_load;
  env.background().inject_spike(h, 3.0, 5.0);
  EXPECT_NEAR(env.topology().host(h).state.cpu_load, before + 3.0, 1e-9);
  env.run_for(6.0);
  EXPECT_NEAR(env.topology().host(h).state.cpu_load, before, 1e-9);
}

}  // namespace
}  // namespace vdce::runtime
