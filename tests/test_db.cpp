// Unit tests for the site-repository databases (§3 schemas).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "db/site_repository.hpp"
#include "net/topology.hpp"

namespace vdce::db {
namespace {

// ---- user accounts ----------------------------------------------------------

TEST(UserAccounts, AddAndAuthenticate) {
  UserAccountsDb db;
  auto id = db.add_user("user_k", "secret", 3, AccessDomain::kGlobal);
  ASSERT_TRUE(id.has_value());
  auto account = db.authenticate("user_k", "secret");
  ASSERT_TRUE(account.has_value());
  EXPECT_EQ(account->user_id, *id);
  EXPECT_EQ(account->priority, 3);
  EXPECT_EQ(account->domain, AccessDomain::kGlobal);
}

TEST(UserAccounts, RejectsWrongPasswordAndUnknownUserAlike) {
  UserAccountsDb db;
  (void)db.add_user("u", "right", 1, AccessDomain::kLocalSite);
  auto wrong = db.authenticate("u", "wrong");
  auto unknown = db.authenticate("ghost", "x");
  ASSERT_FALSE(wrong.has_value());
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(wrong.error().code, common::ErrorCode::kAuthFailed);
  EXPECT_EQ(unknown.error().code, common::ErrorCode::kAuthFailed);
}

TEST(UserAccounts, NoPlaintextAtRest) {
  UserAccountsDb db;
  (void)db.add_user("u", "hunter2", 1, AccessDomain::kLocalSite);
  EXPECT_EQ(db.serialize().find("hunter2"), std::string::npos);
}

TEST(UserAccounts, DuplicateRejected) {
  UserAccountsDb db;
  ASSERT_TRUE(db.add_user("u", "a", 1, AccessDomain::kLocalSite).has_value());
  auto dup = db.add_user("u", "b", 1, AccessDomain::kLocalSite);
  ASSERT_FALSE(dup.has_value());
  EXPECT_EQ(dup.error().code, common::ErrorCode::kAlreadyExists);
}

TEST(UserAccounts, EmptyNameRejected) {
  UserAccountsDb db;
  EXPECT_FALSE(db.add_user("", "a", 1, AccessDomain::kLocalSite).has_value());
}

TEST(UserAccounts, RemoveAndPriority) {
  UserAccountsDb db;
  (void)db.add_user("u", "a", 1, AccessDomain::kLocalSite);
  EXPECT_TRUE(db.set_priority("u", 9).ok());
  EXPECT_EQ(db.find("u")->priority, 9);
  EXPECT_TRUE(db.remove_user("u").ok());
  EXPECT_FALSE(db.remove_user("u").ok());
  EXPECT_EQ(db.size(), 0u);
}

TEST(UserAccounts, SerializeRoundTrip) {
  UserAccountsDb db;
  (void)db.add_user("alice", "pw1", 5, AccessDomain::kNeighbors);
  (void)db.add_user("bob|weird\nname", "pw2", 1, AccessDomain::kGlobal);
  auto restored = UserAccountsDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_TRUE(restored->authenticate("alice", "pw1").has_value());
  EXPECT_TRUE(restored->authenticate("bob|weird\nname", "pw2").has_value());
  EXPECT_FALSE(restored->authenticate("alice", "pw2").has_value());
}

TEST(UserAccounts, DeserializeContinuesIdSequence) {
  UserAccountsDb db;
  (void)db.add_user("a", "x", 1, AccessDomain::kGlobal);
  auto restored = UserAccountsDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value());
  auto id = restored->add_user("b", "y", 1, AccessDomain::kGlobal);
  EXPECT_GT(id->value(), restored->find("a")->user_id.value());
}

TEST(UserAccounts, DeserializeRejectsGarbage) {
  EXPECT_FALSE(UserAccountsDb::deserialize("not|enough|fields").has_value());
  EXPECT_FALSE(
      UserAccountsDb::deserialize("u|x|1|1|1|baddomain").has_value());
}

TEST(UserAccounts, FindByIdAndAll) {
  UserAccountsDb db;
  auto id = db.add_user("a", "x", 1, AccessDomain::kGlobal);
  (void)db.add_user("b", "y", 2, AccessDomain::kLocalSite);
  EXPECT_EQ(db.find(*id)->user_name, "a");
  EXPECT_FALSE(db.find(common::UserId(99)).has_value());
  auto all = db.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_LT(all[0].user_id, all[1].user_id);
}

// ---- resource performance -----------------------------------------------------

ResourceRecord make_host(std::uint32_t id, std::uint32_t site,
                         const std::string& name, double speed = 100) {
  ResourceRecord rec;
  rec.host = common::HostId(id);
  rec.site = common::SiteId(site);
  rec.host_name = name;
  rec.speed_mflops = speed;
  rec.total_memory_mb = 256;
  return rec;
}

TEST(ResourcePerf, RegisterAndFind) {
  ResourcePerformanceDb db;
  ASSERT_TRUE(db.register_host(make_host(0, 0, "a")).ok());
  EXPECT_FALSE(db.register_host(make_host(0, 0, "a")).ok());
  EXPECT_EQ(db.find(common::HostId(0))->host_name, "a");
  EXPECT_EQ(db.find("a")->host, common::HostId(0));
  EXPECT_FALSE(db.find("z").has_value());
}

TEST(ResourcePerf, WorkloadHistoryBounded) {
  ResourcePerformanceDb db;
  (void)db.register_host(make_host(0, 0, "a"));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.record_workload(common::HostId(0),
                                   WorkloadSample{static_cast<double>(i),
                                                  0.1 * i, 100})
                    .ok());
  }
  auto rec = db.find(common::HostId(0));
  EXPECT_EQ(rec->workload_history.size(), ResourceRecord::kHistoryLen);
  EXPECT_DOUBLE_EQ(rec->current_load(), 0.1 * 39);
  EXPECT_DOUBLE_EQ(rec->last_sample_time(), 39.0);
}

TEST(ResourcePerf, FreshHostIsOptimistic) {
  ResourcePerformanceDb db;
  (void)db.register_host(make_host(0, 0, "a"));
  auto rec = db.find(common::HostId(0));
  EXPECT_DOUBLE_EQ(rec->current_load(), 0.0);
  EXPECT_DOUBLE_EQ(rec->available_mb(), 256.0);
  EXPECT_LT(rec->last_sample_time(), 0.0);
}

TEST(ResourcePerf, AvailableHostsFiltersDownAndSite) {
  ResourcePerformanceDb db;
  (void)db.register_host(make_host(0, 0, "a"));
  (void)db.register_host(make_host(1, 0, "b"));
  (void)db.register_host(make_host(2, 1, "c"));
  (void)db.set_host_up(common::HostId(1), false);
  auto avail = db.available_hosts(common::SiteId(0));
  ASSERT_EQ(avail.size(), 1u);
  EXPECT_EQ(avail[0].host_name, "a");
  (void)db.set_host_up(common::HostId(1), true);
  EXPECT_EQ(db.available_hosts(common::SiteId(0)).size(), 2u);
}

TEST(ResourcePerf, UnknownHostErrors) {
  ResourcePerformanceDb db;
  EXPECT_FALSE(db.record_workload(common::HostId(9), {}).ok());
  EXPECT_FALSE(db.set_host_up(common::HostId(9), false).ok());
}

// ---- task performance ------------------------------------------------------------

TEST(TaskPerf, RegisterAndFind) {
  TaskPerformanceDb db;
  TaskPerfRecord rec;
  rec.task_name = "matrix.lu";
  rec.computation_mflop = 2000;
  rec.base_exec_time = 20;
  db.register_task(rec);
  EXPECT_TRUE(db.contains("matrix.lu"));
  EXPECT_DOUBLE_EQ(db.find("matrix.lu")->base_exec_time, 20.0);
  EXPECT_FALSE(db.find("nope").has_value());
}

TEST(TaskPerf, MeasurementsRunningMean) {
  TaskPerformanceDb db;
  TaskPerfRecord rec;
  rec.task_name = "t";
  db.register_task(rec);
  common::HostId host(3);
  ASSERT_TRUE(db.record_execution("t", host, 10.0).ok());
  ASSERT_TRUE(db.record_execution("t", host, 20.0).ok());
  auto measured = db.measured("t", host);
  ASSERT_TRUE(measured.has_value());
  EXPECT_DOUBLE_EQ(measured->mean, 15.0);
  EXPECT_EQ(measured->count, 2u);
  EXPECT_FALSE(db.measured("t", common::HostId(4)).has_value());
  EXPECT_FALSE(db.record_execution("unknown", host, 1.0).ok());
}

TEST(TaskPerf, AllTasksSorted) {
  TaskPerformanceDb db;
  for (const char* name : {"b", "a", "c"}) {
    TaskPerfRecord rec;
    rec.task_name = name;
    db.register_task(rec);
  }
  auto all = db.all_tasks();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].task_name, "a");
  EXPECT_EQ(all[2].task_name, "c");
}

// ---- task constraints ------------------------------------------------------------

TEST(TaskConstraints, PathsAndFeasibility) {
  TaskConstraintsDb db;
  db.register_executable("t", common::HostId(0), "/opt/t");
  EXPECT_TRUE(db.runnable_on("t", common::HostId(0)));
  EXPECT_FALSE(db.runnable_on("t", common::HostId(1)));
  EXPECT_EQ(db.executable_path("t", common::HostId(0)).value(), "/opt/t");
  EXPECT_FALSE(db.executable_path("t", common::HostId(1)).has_value());
}

TEST(TaskConstraints, RegisterEverywhere) {
  TaskConstraintsDb db;
  db.register_everywhere("lib.task", {common::HostId(0), common::HostId(2)});
  auto hosts = db.hosts_for("lib.task");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], common::HostId(0));
  EXPECT_EQ(hosts[1], common::HostId(2));
  EXPECT_TRUE(db.hosts_for("unknown").empty());
}

// ---- site repository ----------------------------------------------------------------

TEST(SiteRepository, RegistersHostsFromTopology) {
  net::Topology t;
  auto s0 = t.add_site("alpha", net::LinkSpec{});
  t.add_host(s0, net::HostSpec{"a0", "10.0.0.1", "sparc", "sunos",
                               "SUN sparc", 111, 128});
  t.add_host(s0, net::HostSpec{"a1", "10.0.0.2", "x86", "linux",
                               "Intel pentium", 222, 256});
  auto s1 = t.add_site("beta", net::LinkSpec{});
  t.add_host(s1, net::HostSpec{"b0", "10.1.0.1", "mips", "irix", "SGI", 99, 64});

  SiteRepository repo(s0);
  repo.register_site_hosts(t);
  EXPECT_EQ(repo.resources().size(), 2u);  // only its own site's hosts
  auto rec = repo.resources().find("a1");
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->speed_mflops, 222.0);
  EXPECT_EQ(rec->machine_type, "Intel pentium");
}

// ---- persistence -----------------------------------------------------------------

TEST(ResourcePerf, SerializeRoundTrip) {
  ResourcePerformanceDb db;
  ResourceRecord rec = make_host(3, 1, "weird|name\nhost", 123.456);
  rec.ip = "10.1.0.3";
  rec.arch = "sparc";
  rec.os = "sunos";
  rec.machine_type = "SUN sparc";
  (void)db.register_host(rec);
  (void)db.record_workload(common::HostId(3),
                           WorkloadSample{1.5, 0.75, 99.5});
  (void)db.record_workload(common::HostId(3),
                           WorkloadSample{2.5, 1.25, 88.0});
  (void)db.set_host_up(common::HostId(3), false);

  auto restored = ResourcePerformanceDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value()) << restored.error().message;
  auto got = restored->find(common::HostId(3));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->host_name, "weird|name\nhost");
  EXPECT_DOUBLE_EQ(got->speed_mflops, 123.456);
  EXPECT_FALSE(got->up);
  ASSERT_EQ(got->workload_history.size(), 2u);
  EXPECT_DOUBLE_EQ(got->current_load(), 1.25);
  EXPECT_DOUBLE_EQ(got->workload_history.front().available_mb, 99.5);
}

TEST(ResourcePerf, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ResourcePerformanceDb::deserialize("too|few|fields").has_value());
  EXPECT_FALSE(ResourcePerformanceDb::deserialize(
                   "x|0|n|ip|a|o|t|100|256|1|badsample")
                   .has_value());
}

TEST(TaskPerf, SerializeRoundTrip) {
  TaskPerformanceDb db;
  TaskPerfRecord rec;
  rec.task_name = "matrix.lu";
  rec.computation_mflop = 2000;
  rec.communication_bytes = 8e5;
  rec.required_memory_mb = 16;
  rec.base_exec_time = 20;
  rec.parallel_fraction = 0.6;
  db.register_task(rec);
  (void)db.record_execution("matrix.lu", common::HostId(2), 18.5);
  (void)db.record_execution("matrix.lu", common::HostId(2), 21.5);

  auto restored = TaskPerformanceDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value()) << restored.error().message;
  auto got = restored->find("matrix.lu");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->computation_mflop, 2000.0);
  EXPECT_DOUBLE_EQ(got->parallel_fraction, 0.6);
  auto measured = restored->measured("matrix.lu", common::HostId(2));
  ASSERT_TRUE(measured.has_value());
  EXPECT_DOUBLE_EQ(measured->mean, 20.0);
  EXPECT_EQ(measured->count, 2u);
}

TEST(TaskPerf, DeserializeRejectsGarbage) {
  EXPECT_FALSE(TaskPerformanceDb::deserialize("frob|x").has_value());
  EXPECT_FALSE(TaskPerformanceDb::deserialize("task|name|NaNope|1|1|1|1")
                   .has_value());
}

TEST(TaskConstraints, SerializeRoundTrip) {
  TaskConstraintsDb db;
  db.register_executable("a.task", common::HostId(0), "/opt/a");
  db.register_executable("a.task", common::HostId(2), "/usr/local/a");
  db.register_executable("b.task", common::HostId(1), "/opt/b");
  auto restored = TaskConstraintsDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->executable_path("a.task", common::HostId(2)).value(),
            "/usr/local/a");
  EXPECT_EQ(restored->hosts_for("a.task").size(), 2u);
  EXPECT_TRUE(restored->runnable_on("b.task", common::HostId(1)));
}

TEST(SiteRepository, SaveAndLoadDirectory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "vdce_repo_test").string();
  std::filesystem::remove_all(dir);

  SiteRepository repo{common::SiteId(1)};
  (void)repo.users().add_user("alice", "pw", 5, AccessDomain::kGlobal);
  (void)repo.resources().register_host(make_host(7, 1, "h7", 200));
  TaskPerfRecord rec;
  rec.task_name = "t";
  rec.computation_mflop = 100;
  repo.tasks().register_task(rec);
  (void)repo.tasks().record_execution("t", common::HostId(7), 3.0);
  repo.constraints().register_executable("t", common::HostId(7), "/opt/t");

  ASSERT_TRUE(repo.save_to(dir).ok());
  for (const char* file :
       {"users.db", "resources.db", "tasks.db", "constraints.db"}) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / file));
  }

  auto loaded = SiteRepository::load_from(dir, common::SiteId(1));
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_TRUE(loaded->users().authenticate("alice", "pw").has_value());
  EXPECT_EQ(loaded->resources().find("h7")->host, common::HostId(7));
  EXPECT_DOUBLE_EQ(loaded->tasks().measured("t", common::HostId(7))->mean, 3.0);
  EXPECT_TRUE(loaded->constraints().runnable_on("t", common::HostId(7)));
  std::filesystem::remove_all(dir);
}

TEST(SiteRepository, LoadFromMissingDirectoryFails) {
  auto loaded = SiteRepository::load_from("/nonexistent/vdce", common::SiteId(0));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, common::ErrorCode::kIoError);
}

}  // namespace
}  // namespace vdce::db
