// Tier-2 cascading-failure matrix: K = 1..3 hosts crash mid-run (via a
// chaos::FaultPlan, so the whole scenario is deterministic and replayable)
// and the application must still complete, with every reschedule recorded
// in the ExecutionReport's recovery log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "editor/builder.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

class CascadingFailure : public ::testing::TestWithParam<int> {};

TEST_P(CascadingFailure, ApplicationCompletesWithReschedulesRecorded) {
  const int kill_count = GetParam();

  net::Topology topology = make_campus_pair(13);
  const net::Site& site0 = topology.site(common::SiteId(0));

  // Pin a three-wide parallel stage to known non-server machines, then
  // crash the first K of them while their tasks run.
  std::vector<std::string> pinned;
  for (common::HostId h : site0.hosts) {
    if (h == site0.server) continue;
    pinned.push_back(topology.host(h).spec.name);
    if (pinned.size() == 3) break;
  }
  ASSERT_EQ(pinned.size(), 3u);

  chaos::FaultPlan plan;
  plan.name("cascade-k" + std::to_string(kill_count)).seed(5);
  for (int k = 0; k < kill_count; ++k) {
    plan.crash(pinned[static_cast<std::size_t>(k)], 1.0 + 0.7 * k);
  }

  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.faults = std::move(plan);
  VdceEnvironment env(std::move(topology), options);
  ASSERT_TRUE(env.try_bring_up().ok());
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  editor::AppBuilder builder("cascade");
  auto join = builder.task("join", "synthetic.w500");
  for (int i = 0; i < 3; ++i) {
    auto stage = builder
                     .task("par" + std::to_string(i), "synthetic.w2000")
                     .prefer_machine(pinned[static_cast<std::size_t>(i)])
                     .output_data(1e5);
    ASSERT_TRUE(builder.link(stage, join).has_value());
  }
  afg::Afg graph = builder.build().value();

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);

  // Every crashed host forced at least one recorded reschedule, and no
  // task finished on a machine that was down.
  EXPECT_GE(static_cast<int>(report->recoveries.size()), kill_count);
  EXPECT_EQ(static_cast<int>(env.chaos()->faults_injected()), kill_count);
  for (const auto& outcome : report->outcomes) {
    EXPECT_TRUE(env.topology().host(outcome.host).state.up)
        << "task finished on dead host " << outcome.host.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Kills, CascadingFailure, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace vdce
