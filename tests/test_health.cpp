// vdce::obs::health — the live health plane: time-series rings and windowed
// aggregates, each rule kind, default-rule detection of injected faults with
// precision/recall scoring, identical-seed alert determinism, off-means-off
// byte identity, and offline replay matching the live run exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "afg/generate.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

namespace health = obs::health;

health::SeriesKey key_of(const char* metric, std::int64_t host = -1,
                         std::int64_t site = -1) {
  health::SeriesKey key;
  key.metric = metric;
  key.host = host;
  key.site = site;
  return key;
}

/// A standalone enabled plane with no sinks — the rule-engine unit fixture.
health::HealthPlane make_plane(std::vector<health::HealthRule> rules,
                               std::size_t ring = 64) {
  health::HealthOptions options;
  options.enabled = true;
  options.ring_capacity = ring;
  options.default_rules = false;
  health::HealthPlane plane(std::move(options));
  plane.start(0.0);
  for (health::HealthRule& rule : rules) plane.add_rule(std::move(rule), 0.0);
  return plane;
}

// --- TimeSeries: ring, window aggregates, quantiles -------------------------

TEST(TimeSeries, RingEvictsOldestAndKeepsTotal) {
  health::TimeSeries ts(key_of("m"), 4, 0.0);
  for (int i = 0; i < 10; ++i) ts.observe(i, i * 1.0);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.capacity(), 4u);
  EXPECT_EQ(ts.total(), 10u);
  EXPECT_DOUBLE_EQ(ts.last(), 9.0);
  EXPECT_DOUBLE_EQ(ts.last_time(), 9.0);
  std::vector<double> seen;
  ts.for_each([&](const health::SeriesPoint& p) { seen.push_back(p.value); });
  EXPECT_EQ(seen, (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
}

TEST(TimeSeries, WindowAggregatesExcludeOldPoints) {
  health::TimeSeries ts(key_of("m"), 16, 0.0);
  ts.observe(0.0, 100.0);  // outside the window below
  ts.observe(5.0, 1.0);
  ts.observe(6.0, 3.0);
  ts.observe(7.0, 2.0);
  health::WindowStats w = ts.window(7.0, 2.5);
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.mean, 2.0);
  EXPECT_DOUBLE_EQ(w.min, 1.0);
  EXPECT_DOUBLE_EQ(w.max, 3.0);
  EXPECT_DOUBLE_EQ(w.last, 2.0);
  // Slope across the window: (2 - 1) / (7 - 5).
  EXPECT_DOUBLE_EQ(w.rate, 0.5);
  EXPECT_DOUBLE_EQ(w.last_time, 7.0);
  // Empty window: count 0, last_time -1.
  health::WindowStats empty = ts.window(100.0, 1.0);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.last_time, -1.0);
}

TEST(TimeSeries, CounterIncreaseUsesWindowBaseline) {
  health::TimeSeries ts(key_of("c"), 16, 0.0);
  ts.observe(1.0, 2.0);
  ts.observe(5.0, 3.0);
  ts.observe(9.0, 10.0);
  // Window [4, 9]: baseline is the last point at or before the cutoff.
  EXPECT_DOUBLE_EQ(ts.window(9.0, 5.0).increase, 8.0);
  // Window covering the series' whole life: counter-from-zero.
  EXPECT_DOUBLE_EQ(ts.window(9.0, 20.0).increase, 10.0);
}

TEST(TimeSeries, WindowQuantileIsExactNearestRank) {
  health::TimeSeries ts(key_of("m"), 16, 0.0);
  for (int i = 1; i <= 10; ++i) ts.observe(i, static_cast<double>(i));
  std::vector<double> scratch;
  EXPECT_DOUBLE_EQ(ts.window_quantile(10.0, 100.0, 0.5, scratch), 5.0);
  EXPECT_DOUBLE_EQ(ts.window_quantile(10.0, 100.0, 1.0, scratch), 10.0);
  EXPECT_DOUBLE_EQ(ts.window_quantile(10.0, 100.0, 0.0, scratch), 1.0);
  // Empty window: 0.0, never NaN.
  EXPECT_DOUBLE_EQ(ts.window_quantile(100.0, 1.0, 0.5, scratch), 0.0);
}

// --- rule kinds -------------------------------------------------------------

TEST(HealthRules, ThresholdFiresAndClears) {
  health::HealthRule rule;
  rule.id = "hot";
  rule.kind = health::RuleKind::kThreshold;
  rule.metric = "m";
  rule.threshold = 5.0;
  health::HealthPlane plane = make_plane({rule});
  health::SeriesKey key = key_of("m", 1, 0);
  plane.observe(key, 1.0, 3.0);
  plane.evaluate(1.0);
  EXPECT_TRUE(plane.alerts().empty());
  plane.observe(key, 2.0, 7.0);
  plane.evaluate(2.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  EXPECT_EQ(plane.alerts()[0].rule, "hot");
  EXPECT_TRUE(plane.alerts()[0].active());
  EXPECT_DOUBLE_EQ(plane.alerts()[0].fired, 2.0);
  EXPECT_DOUBLE_EQ(plane.alerts()[0].value, 7.0);
  plane.observe(key, 3.0, 4.0);
  plane.evaluate(3.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  EXPECT_FALSE(plane.alerts()[0].active());
  EXPECT_DOUBLE_EQ(plane.alerts()[0].cleared, 3.0);
  EXPECT_EQ(plane.active_alerts(), 0u);
}

TEST(HealthRules, SustainedNeedsEverySampleBeyond) {
  health::HealthRule rule;
  rule.id = "sustained";
  rule.kind = health::RuleKind::kSustained;
  rule.metric = "m";
  rule.threshold = 5.0;
  rule.window = 3.0;
  rule.min_samples = 2;
  health::HealthPlane plane = make_plane({rule});
  health::SeriesKey key = key_of("m", 1, 0);
  plane.observe(key, 1.0, 9.0);
  plane.evaluate(1.0);
  EXPECT_TRUE(plane.alerts().empty());  // only one sample in the window
  plane.observe(key, 1.5, 4.0);         // a dip resets the streak
  plane.evaluate(2.0);
  EXPECT_TRUE(plane.alerts().empty());
  plane.observe(key, 4.4, 8.0);
  plane.observe(key, 5.0, 9.0);  // window [2, 5] holds {8, 9}: all beyond
  plane.evaluate(5.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  // kSustained reports the window extremum nearest the threshold.
  EXPECT_DOUBLE_EQ(plane.alerts()[0].value, 8.0);
}

TEST(HealthRules, RateOfChangeWatchesTheSlope) {
  health::HealthRule rule;
  rule.id = "climbing";
  rule.kind = health::RuleKind::kRateOfChange;
  rule.metric = "m";
  rule.threshold = 1.0;  // > 1 unit / second
  rule.window = 10.0;
  health::HealthPlane plane = make_plane({rule});
  health::SeriesKey key = key_of("m", 1, 0);
  plane.observe(key, 1.0, 0.0);
  plane.observe(key, 2.0, 0.5);
  plane.evaluate(2.0);
  EXPECT_TRUE(plane.alerts().empty());  // slope 0.5
  plane.observe(key, 3.0, 4.0);
  plane.evaluate(3.0);  // slope (4 - 0) / 2 = 2
  ASSERT_EQ(plane.alerts().size(), 1u);
  EXPECT_DOUBLE_EQ(plane.alerts()[0].value, 2.0);
}

TEST(HealthRules, BurnRateNeedsBothWindows) {
  health::HealthRule rule;
  rule.id = "burn";
  rule.kind = health::RuleKind::kBurnRate;
  rule.metric = "c";
  rule.threshold = 0.5;  // events / second
  rule.window = 4.0;
  rule.long_window = 16.0;
  health::HealthPlane plane = make_plane({rule});
  health::SeriesKey key = key_of("c");
  // Short burst at t=18-20 (short-window rate high) but quiet before it, so
  // the long window stays below threshold: no alert.
  plane.observe_delta(key, 18.0, 2.0);
  plane.observe_delta(key, 19.0, 1.0);
  plane.evaluate(20.0);  // short: 3/4 = 0.75 > 0.5; long: 3/16 < 0.5
  EXPECT_TRUE(plane.alerts().empty());
  // Sustained storm: both windows burn.
  for (int i = 0; i < 12; ++i) {
    plane.observe_delta(key, 20.0 + i, 1.0);
  }
  plane.evaluate(32.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  EXPECT_EQ(plane.alerts()[0].rule, "burn");
}

TEST(HealthRules, StalenessCountsFromCreationWhenNeverFed) {
  health::HealthRule rule;
  rule.id = "stale";
  rule.kind = health::RuleKind::kStaleness;
  rule.metric = "m";
  rule.window = 5.0;
  health::HealthPlane plane = make_plane({rule});
  // Series created at t=0 and never fed: stale once now - created > 5.
  (void)plane.series(key_of("m", 1, 0), 0.0);
  plane.evaluate(4.0);
  EXPECT_TRUE(plane.alerts().empty());
  plane.evaluate(6.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  // A fresh sample clears it.
  plane.observe(key_of("m", 1, 0), 7.0, 1.0);
  plane.evaluate(8.0);
  EXPECT_FALSE(plane.alerts()[0].active());
}

TEST(HealthRules, SelectorsScopeRulesToHostAndSite) {
  health::HealthRule rule;
  rule.id = "host-3-only";
  rule.kind = health::RuleKind::kThreshold;
  rule.metric = "m";
  rule.threshold = 1.0;
  rule.host = 3;
  health::HealthPlane plane = make_plane({rule});
  plane.observe(key_of("m", 2, 0), 1.0, 9.0);
  plane.observe(key_of("m", 3, 0), 1.0, 9.0);
  plane.evaluate(1.0);
  ASSERT_EQ(plane.alerts().size(), 1u);
  EXPECT_EQ(plane.alerts()[0].series.host, 3);
}

TEST(HealthPlane, DisabledPlaneRegistersAndEmitsNothing) {
  health::HealthPlane plane;  // default options: disabled
  EXPECT_EQ(plane.series(key_of("m"), 0.0), nullptr);
  plane.observe(key_of("m"), 1.0, 1.0);
  plane.observe_delta(key_of("m"), 1.0);
  plane.evaluate(1.0);
  EXPECT_EQ(plane.series_count(), 0u);
  EXPECT_TRUE(plane.alerts().empty());
  EXPECT_EQ(plane.evaluations(), 0u);
}

TEST(HealthPlane, SeriesCapDropsRegistrationsPastIt) {
  health::HealthOptions options;
  options.enabled = true;
  options.max_series = 2;
  options.default_rules = false;
  health::HealthPlane plane(std::move(options));
  plane.start(0.0);
  EXPECT_NE(plane.series(key_of("a"), 0.0), nullptr);
  EXPECT_NE(plane.series(key_of("b"), 0.0), nullptr);
  EXPECT_EQ(plane.series(key_of("c"), 0.0), nullptr);
  EXPECT_EQ(plane.series_count(), 2u);
}

// --- detection scoring ------------------------------------------------------

TEST(DetectionScore, MatchesAlertsToFaultsByLabelAndWindow) {
  std::vector<health::GroundTruthFault> faults;
  health::GroundTruthFault crash;
  crash.kind = "crash";
  crash.at = 10.0;
  crash.duration = 5.0;
  crash.host = 3;
  crash.site = 0;
  faults.push_back(crash);

  std::vector<health::Alert> alerts;
  health::Alert hit;  // host-labelled, inside the window: detects the crash
  hit.rule = "monitor-stale";
  hit.series = key_of(health::kHostLoad, 3, 0);
  hit.fired = 13.0;
  alerts.push_back(hit);
  health::Alert miss;  // wrong host: a false positive
  miss.rule = "monitor-stale";
  miss.series = key_of(health::kHostLoad, 5, 1);
  miss.fired = 13.0;
  alerts.push_back(miss);
  health::Alert excused;  // control-plane alert overlapping the fault window
  excused.rule = "recovery-storm";
  excused.series = key_of(health::kRecoveryActions);
  excused.fired = 12.0;
  alerts.push_back(excused);

  health::DetectionScore score = health::score_detections(faults, alerts);
  ASSERT_EQ(score.faults.size(), 1u);
  EXPECT_TRUE(score.faults[0].detected);
  EXPECT_DOUBLE_EQ(score.faults[0].latency, 3.0);
  EXPECT_EQ(score.faults[0].rule, "monitor-stale");
  EXPECT_EQ(score.by_class.at("crash").detected, 1u);
  EXPECT_DOUBLE_EQ(score.by_class.at("crash").recall(), 1.0);
  EXPECT_EQ(score.true_positive_alerts, 1u);
  EXPECT_EQ(score.false_positive_alerts, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.5);
  EXPECT_FALSE(score.render().empty());
}

TEST(DetectionScore, LateAlertsDoNotCount) {
  health::GroundTruthFault fault;
  fault.kind = "crash";
  fault.at = 10.0;
  fault.duration = 2.0;
  fault.host = 1;
  health::Alert late;
  late.rule = "monitor-stale";
  late.series = key_of(health::kHostLoad, 1, 0);
  late.fired = 100.0;
  health::DetectionOptions options;
  options.max_latency = 10.0;
  health::DetectionScore score =
      health::score_detections({fault}, {late}, options);
  EXPECT_FALSE(score.faults[0].detected);
  EXPECT_EQ(score.false_positive_alerts, 1u);
}

// --- end-to-end: default rules vs injected faults ---------------------------

EnvironmentOptions health_options(chaos::FaultPlan plan,
                                  double sensitivity = 1.0) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.trace.enabled = true;
  options.metrics.enabled = true;
  options.health.enabled = true;
  options.health.sensitivity = sensitivity;
  options.faults = std::move(plan);
  return options;
}

TEST(HealthEndToEnd, CrashFiresMonitorStaleOnTheCrashedHost) {
  chaos::FaultPlan plan;
  plan.name("one-crash").crash(common::HostId(2), 4.0, 12.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(12.0);

  bool fired_on_crashed_host = false;
  for (const health::Alert& alert : env.health().alerts()) {
    if (alert.rule == "monitor-stale" && alert.series.host == 2) {
      fired_on_crashed_host = true;
      EXPECT_GE(alert.fired, 4.0);
    }
  }
  EXPECT_TRUE(fired_on_crashed_host)
      << health::render_alerts(env.health().alerts());

  health::DetectionScore score = health::score_detections(
      env.chaos()->ground_truth(), env.health().alerts());
  EXPECT_DOUBLE_EQ(score.by_class.at("crash").recall(), 1.0);
  EXPECT_EQ(score.false_positive_alerts, 0u) << score.render();
}

TEST(HealthEndToEnd, PartitionFiresLinkProbeStale) {
  chaos::FaultPlan plan;
  plan.name("split").partition(0, 1, 3.0, 10.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(12.0);

  bool link_alert = false;
  for (const health::Alert& alert : env.health().alerts()) {
    if (alert.rule == "link-probe-stale" && alert.series.link_a == 0 &&
        alert.series.link_b == 1) {
      link_alert = true;
      EXPECT_GE(alert.fired, 3.0);
    }
  }
  EXPECT_TRUE(link_alert) << health::render_alerts(env.health().alerts());

  health::DetectionScore score = health::score_detections(
      env.chaos()->ground_truth(), env.health().alerts());
  EXPECT_DOUBLE_EQ(score.by_class.at("partition").recall(), 1.0);
}

TEST(HealthEndToEnd, StaleMonitorWindowFiresWithoutAHostDown) {
  chaos::FaultPlan plan;
  plan.name("stale").stale_host(common::HostId(3), 2.0, 10.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(12.0);

  bool stale_alert = false;
  for (const health::Alert& alert : env.health().alerts()) {
    if (alert.rule == "monitor-stale" && alert.series.host == 3) {
      stale_alert = true;
    }
  }
  EXPECT_TRUE(stale_alert) << health::render_alerts(env.health().alerts());
  // The host never went down — the echo rounds keep answering.
  EXPECT_TRUE(env.topology().host_up(common::HostId(3)));
}

TEST(HealthEndToEnd, QuietRunRaisesNoAlerts) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.health.enabled = true;
  VdceEnvironment env(make_campus_pair(13), options);
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(20.0);
  EXPECT_TRUE(env.health().alerts().empty())
      << health::render_alerts(env.health().alerts());
  EXPECT_GT(env.health().samples(), 0u);
  EXPECT_GT(env.health().evaluations(), 0u);
}

// --- determinism and byte identity ------------------------------------------

std::string chaotic_alert_log(std::uint64_t seed) {
  chaos::FaultPlan plan;
  plan.name("determinism")
      .seed(seed)
      .crash(common::HostId(2), 2.0, 8.0)
      .partition(0, 1, 5.0, 6.0)
      .stale_host(common::HostId(5), 3.0, 8.0)
      .slow(common::HostId(4), 1.0, 10.0, 4.0);
  EnvironmentOptions options = health_options(std::move(plan));
  options.runtime.seed = 99;
  VdceEnvironment env(make_campus_pair(13), options);
  EXPECT_TRUE(env.try_bring_up().ok());
  env.run_for(16.0);
  return health::render_alerts(env.health().alerts()) + "---\n" +
         health::score_detections(env.chaos()->ground_truth(),
                                  env.health().alerts())
             .render();
}

TEST(HealthDeterminism, IdenticalSeedsProduceIdenticalAlertSequences) {
  const std::string first = chaotic_alert_log(21);
  const std::string second = chaotic_alert_log(21);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(HealthDeterminism, DisabledPlaneLeavesTracesByteIdentical) {
  auto run = [](bool configure_rules) {
    EnvironmentOptions options;
    options.runtime.exec_noise_cv = 0.0;
    options.trace.enabled = true;
    options.metrics.enabled = true;
    if (configure_rules) {
      // A configured-but-disabled plane must behave exactly like an
      // untouched one: enabled stays false.
      options.health.sensitivity = 0.5;
      health::HealthRule rule;
      rule.id = "never";
      rule.metric = health::kHostLoad;
      rule.threshold = 0.0;
      options.health.rules.push_back(rule);
    }
    VdceEnvironment env(make_campus_pair(13), options);
    EXPECT_TRUE(env.try_bring_up().ok());
    EXPECT_TRUE(env.try_add_user("u", "p").ok());
    Session session = env.login(common::SiteId(0), "u", "p").value();
    afg::Afg graph = afg::make_chain(3, 500, 1e4);
    RunOptions opts;
    opts.real_kernels = false;
    auto report = env.run_application(graph, session, opts);
    EXPECT_TRUE(report.has_value());
    env.run_for(3.0);
    return env.trace().to_jsonl();
  };
  const std::string plain = run(false);
  const std::string configured = run(true);
  EXPECT_EQ(plain, configured);
  EXPECT_EQ(plain.find("health."), std::string::npos);
}

// --- offline replay ---------------------------------------------------------

TEST(HealthReplay, OfflineReplayMatchesTheLiveRun) {
  chaos::FaultPlan plan;
  plan.name("replay")
      .crash(common::HostId(2), 3.0, 8.0)
      .partition(0, 1, 6.0, 5.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(14.0);
  ASSERT_FALSE(env.health().alerts().empty());

  const std::string jsonl = env.trace().to_jsonl();
  auto parsed = obs::parse_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  auto replay = health::replay_trace(*parsed);
  ASSERT_TRUE(replay.has_value()) << replay.error().message;
  EXPECT_TRUE(replay->matches())
      << "live:\n"
      << health::render_alerts(replay->recorded) << "replayed:\n"
      << health::render_alerts(replay->plane.alerts());
  EXPECT_EQ(replay->recorded.size(), env.health().alerts().size());
  // Wall series never reach the trace, so the replayed plane holds one
  // fewer series than the live one.
  EXPECT_EQ(replay->plane.series_count() + 1, env.health().series_count());
}

TEST(HealthReplay, TraceWithoutHealthRecordsIsATypedError) {
  EnvironmentOptions options;
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(13), options);
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(2.0);
  auto parsed = obs::parse_jsonl(env.trace().to_jsonl());
  ASSERT_TRUE(parsed.has_value());
  auto replay = health::replay_trace(*parsed);
  ASSERT_FALSE(replay.has_value());
  EXPECT_EQ(replay.error().code, common::ErrorCode::kNotFound);
}

// --- report surface and exports ---------------------------------------------

TEST(HealthEndToEnd, ReportCarriesAlertsThatFiredInFlight) {
  chaos::FaultPlan plan;
  plan.name("mid-run-crash").crash(common::HostId(2), 2.0, 10.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  afg::Afg graph = afg::make_fork_join(3, 2, 3000, 1e5);
  RunOptions opts;
  opts.real_kernels = false;
  auto report = env.run_application(graph, session, opts);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  bool monitor_stale = false;
  for (const health::Alert& alert : report->alerts) {
    if (alert.rule == "monitor-stale" && alert.series.host == 2) {
      monitor_stale = true;
    }
  }
  EXPECT_TRUE(monitor_stale)
      << "report carried " << report->alerts.size() << " alerts";
}

TEST(HealthPlane, OpenMetricsExportHasSeriesAlertsAndEof) {
  chaos::FaultPlan plan;
  plan.name("export").crash(common::HostId(2), 2.0, 0.0);
  VdceEnvironment env(make_campus_pair(13), health_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(10.0);
  const std::string text = env.health().to_openmetrics(env.now());
  EXPECT_NE(text.find("vdce_health_host_cpu_load"), std::string::npos);
  EXPECT_NE(text.find("vdce_health_link_rtt"), std::string::npos);
  EXPECT_NE(text.find("vdce_health_alerts_active"), std::string::npos);
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
  // No NaN/Inf value anywhere in the exposition (values follow a space;
  // bare "nan" also lives inside the word "tenancy").
  EXPECT_EQ(text.find(" nan"), std::string::npos);
  EXPECT_EQ(text.find(" -nan"), std::string::npos);
  EXPECT_EQ(text.find(" inf"), std::string::npos);
  EXPECT_EQ(text.find(" -inf"), std::string::npos);
  // Wall series stay out of the deterministic export.
  EXPECT_EQ(text.find("events_per_sec"), std::string::npos);
}

}  // namespace
}  // namespace vdce
