// vdce::sched — advance reservations and conservative backfill
// (docs/RESERVATIONS.md): WindowTable booking/conflict/cancel units, the
// conservative-backfill admissibility predicate, crash-displacement
// re-placement, typed environment-level rejections (reserve(), ticket
// redemption, booking quotas), the end-to-end parked-submission pipeline
// with its exactly-tiled reservation phase, the no-delay invariant (a
// backfilled app never moves a committed window's start), and booking-order
// determinism under seed replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "editor/builder.hpp"
#include "sched/reservations.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

using common::AppId;
using common::HostId;

// --- ReservationTable (the instantaneous degenerate case) -------------------

TEST(ReservationTable, HostsOfReturnsAscendingHostIds) {
  sched::ReservationTable table;
  table.acquire(AppId(1), {HostId(5), HostId(1), HostId(9), HostId(3)});
  const std::vector<HostId> hosts = table.hosts_of(AppId(1));
  ASSERT_EQ(hosts.size(), 4u);
  // The ascending order is part of the documented contract now — recovery
  // and the window displacement path both rely on it being stable.
  EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
  EXPECT_EQ(hosts.front(), HostId(1));
  EXPECT_EQ(hosts.back(), HostId(9));
}

// --- WindowTable units ------------------------------------------------------

sched::Window make_window(double start, double end,
                          std::vector<HostId> hosts,
                          const std::string& user = "u") {
  sched::Window w;
  w.user = user;
  w.start = start;
  w.end = end;
  w.hosts = std::move(hosts);
  return w;
}

TEST(WindowTable, BookSortsHostsAndAssignsSequentialIds) {
  sched::WindowTable table;
  EXPECT_FALSE(table.has_windows());
  auto a = table.book(make_window(0.0, 10.0, {HostId(4), HostId(1), HostId(4)}));
  ASSERT_TRUE(a.has_value());
  auto b = table.book(make_window(20.0, 30.0, {HostId(1)}));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, *a + 1);  // booking ids are sequential, replay-stable
  EXPECT_TRUE(table.has_windows());
  EXPECT_EQ(table.window_count(), 2u);

  const sched::Window* w = table.window(*a);
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->hosts.size(), 2u);  // duplicates collapsed
  EXPECT_EQ(w->hosts[0], HostId(1));
  EXPECT_EQ(w->hosts[1], HostId(4));
  EXPECT_TRUE(w->contains_host(HostId(4)));
  EXPECT_FALSE(w->contains_host(HostId(2)));
}

TEST(WindowTable, OverlappingCommittedWindowIsTypedConflict) {
  sched::WindowTable table;
  ASSERT_TRUE(table.book(make_window(10.0, 20.0, {HostId(1), HostId(2)}))
                  .has_value());

  // Overlap on a shared host: typed kReservationConflict.
  auto clash = table.book(make_window(15.0, 25.0, {HostId(2)}));
  ASSERT_FALSE(clash.has_value());
  EXPECT_EQ(clash.error().code, common::ErrorCode::kReservationConflict);
  EXPECT_EQ(table.window_conflicts(), 1u);

  // Adjacent ([20, 30) after [10, 20)) and disjoint-host windows are fine.
  EXPECT_TRUE(table.book(make_window(20.0, 30.0, {HostId(2)})).has_value());
  EXPECT_TRUE(table.book(make_window(12.0, 18.0, {HostId(3)})).has_value());
  EXPECT_EQ(table.window_conflicts(), 1u);
}

TEST(WindowTable, CancelFreesTheInterval) {
  sched::WindowTable table;
  auto a = table.book(make_window(0.0, 10.0, {HostId(1)}));
  ASSERT_TRUE(a.has_value());
  auto clash = table.book(make_window(5.0, 15.0, {HostId(1)}));
  ASSERT_FALSE(clash.has_value());

  EXPECT_TRUE(table.cancel(*a).ok());
  EXPECT_EQ(table.window(*a), nullptr);
  EXPECT_FALSE(table.has_windows());
  auto unknown = table.cancel(*a);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, common::ErrorCode::kNotFound);

  // The freed interval books again.
  EXPECT_TRUE(table.book(make_window(5.0, 15.0, {HostId(1)})).has_value());
}

TEST(WindowTable, LinkWindowsShareCapacityUpToOne) {
  auto link_window = [](double start, double end, HostId src, HostId dst,
                        double fraction) {
    sched::Window w;
    w.user = "u";
    w.start = start;
    w.end = end;
    w.link_src = src;
    w.link_dst = dst;
    w.link_fraction = fraction;
    return w;
  };
  sched::WindowTable table;
  ASSERT_TRUE(
      table.book(link_window(0.0, 10.0, HostId(0), HostId(1), 0.6)).has_value());
  // Same directed link, overlapping, 0.6 + 0.5 > 1: conflict.
  auto over = table.book(link_window(5.0, 15.0, HostId(0), HostId(1), 0.5));
  ASSERT_FALSE(over.has_value());
  EXPECT_EQ(over.error().code, common::ErrorCode::kReservationConflict);
  // 0.6 + 0.4 fits; the reverse direction is a different resource.
  EXPECT_TRUE(
      table.book(link_window(5.0, 15.0, HostId(0), HostId(1), 0.4)).has_value());
  EXPECT_TRUE(
      table.book(link_window(0.0, 10.0, HostId(1), HostId(0), 0.9)).has_value());
}

TEST(WindowTable, WindowBlockedImplementsConservativeBackfill) {
  sched::WindowTable table;
  auto booking = table.book(make_window(10.0, 20.0, {HostId(2)}));
  ASSERT_TRUE(booking.has_value());
  table.bind_owner(*booking, AppId(7));
  const AppId foreign = AppId(3);

  // Active window always blocks a foreign app.
  EXPECT_TRUE(table.window_blocked(HostId(2), foreign, 12.0, 13.0, true));
  // Pending window: blocked with backfill off, with an unknown duration, or
  // when the guarded finish estimate lands past the committed start.
  EXPECT_TRUE(table.window_blocked(HostId(2), foreign, 5.0, 9.0, false));
  EXPECT_TRUE(table.window_blocked(HostId(2), foreign, 5.0, -1.0, true));
  EXPECT_TRUE(table.window_blocked(HostId(2), foreign, 5.0, 11.0, true));
  // Provably-safe backfill: finishes before the window opens.
  EXPECT_FALSE(table.window_blocked(HostId(2), foreign, 5.0, 9.0, true));
  // The owner is never blocked by its own window; unrelated hosts and
  // expired windows never block anyone.
  EXPECT_FALSE(table.window_blocked(HostId(2), AppId(7), 12.0, -1.0, false));
  EXPECT_FALSE(table.window_blocked(HostId(3), foreign, 12.0, -1.0, false));
  EXPECT_FALSE(table.window_blocked(HostId(2), foreign, 25.0, -1.0, false));

  EXPECT_EQ(table.next_foreign_start(HostId(2), foreign, 5.0), 10.0);
  EXPECT_EQ(table.next_foreign_start(HostId(2), AppId(7), 5.0), -1.0);
}

TEST(WindowTable, WindowsOfSortsByStartAndSkipsExpired) {
  sched::WindowTable table;
  ASSERT_TRUE(table.book(make_window(30.0, 40.0, {HostId(1)})).has_value());
  ASSERT_TRUE(table.book(make_window(0.0, 5.0, {HostId(1)})).has_value());
  ASSERT_TRUE(table.book(make_window(10.0, 20.0, {HostId(1)})).has_value());

  const auto all = table.windows_of(HostId(1));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->start, 0.0);
  EXPECT_EQ(all[1]->start, 10.0);
  EXPECT_EQ(all[2]->start, 30.0);

  const auto live = table.windows_of(HostId(1), 7.0);  // [0, 5) is over
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->start, 10.0);
  EXPECT_EQ(table.window_count(7.0), 2u);
}

TEST(WindowTable, DisplaceHostSubstitutesLowestSafeCandidate) {
  sched::WindowTable table;
  auto a = table.book(make_window(0.0, 10.0, {HostId(1), HostId(2)}));
  ASSERT_TRUE(a.has_value());
  auto b = table.book(make_window(5.0, 15.0, {HostId(3)}));
  ASSERT_TRUE(b.has_value());

  // Host 2 dies at t=1.  Candidate 1 is already in the window, candidate 3
  // would collide with the overlapping window b, so 4 substitutes.
  const std::vector<std::uint64_t> displaced = table.displace_host(
      HostId(2), 1.0, {HostId(5), HostId(4), HostId(3), HostId(1)});
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], *a);

  const sched::Window* w = table.window(*a);
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->hosts.size(), 2u);
  EXPECT_EQ(w->hosts[0], HostId(1));
  EXPECT_EQ(w->hosts[1], HostId(4));
  EXPECT_EQ(w->displacements, 1);
  // Idempotent: the dead host is no longer in any window.
  EXPECT_TRUE(table.displace_host(HostId(2), 1.0, {HostId(4)}).empty());
}

// --- environment API: typed rejections --------------------------------------

afg::Afg tiny_app(const std::string& name) {
  editor::AppBuilder app(name);
  auto a = app.task("a", "synthetic.w300").output_data(1e4);
  auto b = app.task("b", "synthetic.w200");
  EXPECT_TRUE(app.link(a, b).has_value());
  return app.build().value();
}

EnvironmentOptions quiet_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  return options;
}

ReservationRequest request_for(std::vector<HostId> hosts, double start,
                               double end) {
  ReservationRequest request;
  request.hosts = std::move(hosts);
  request.start = start;
  request.end = end;
  return request;
}

TEST(ReservationApi, ReserveValidatesArgumentsTyped) {
  VdceEnvironment env(make_campus_pair(5), quiet_options());
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();
  env.run_for(2.0);

  auto empty = env.reserve(session, request_for({}, 5.0, 10.0));
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code, common::ErrorCode::kInvalidArgument);

  auto inverted = env.reserve(session, request_for({HostId(1)}, 10.0, 5.0));
  ASSERT_FALSE(inverted.has_value());
  EXPECT_EQ(inverted.error().code, common::ErrorCode::kInvalidArgument);

  auto past = env.reserve(session, request_for({HostId(1)}, 1.0, 5.0));
  ASSERT_FALSE(past.has_value());
  EXPECT_EQ(past.error().code, common::ErrorCode::kInvalidArgument);

  auto ghost_host = env.reserve(session, request_for({HostId(999)}, 5.0, 10.0));
  ASSERT_FALSE(ghost_host.has_value());
  EXPECT_EQ(ghost_host.error().code, common::ErrorCode::kNotFound);
  EXPECT_NE(ghost_host.error().message.find("999"), std::string::npos);

  ReservationRequest link = request_for({HostId(1)}, 5.0, 10.0);
  link.link_src = HostId(0);
  link.link_dst = HostId(1);
  link.link_fraction = 1.5;
  auto oversub = env.reserve(session, link);
  ASSERT_FALSE(oversub.has_value());
  EXPECT_EQ(oversub.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(ReservationApi, ConflictQuotaAndCancelAreTyped) {
  EnvironmentOptions options = quiet_options();
  options.tenancy.max_reservations_per_user = 1;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  ASSERT_TRUE(env.try_add_user("rival", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();
  Session rival = env.login(common::SiteId(0), "rival", "p").value();

  auto ticket = env.reserve(session, request_for({HostId(1), HostId(2)},
                                                 10.0, 20.0));
  ASSERT_TRUE(ticket.has_value()) << ticket.error().to_string();
  EXPECT_TRUE(ticket->valid());
  ASSERT_NE(env.reservation_window(*ticket), nullptr);
  EXPECT_EQ(env.reservation_window(*ticket)->user, "u");

  // Overlap on a booked host: kReservationConflict, with the interval named.
  auto clash = env.reserve(rival, request_for({HostId(2)}, 15.0, 25.0));
  ASSERT_FALSE(clash.has_value());
  EXPECT_EQ(clash.error().code, common::ErrorCode::kReservationConflict);

  // Second booking for the same user: the reservation quota says no.
  auto quota = env.reserve(session, request_for({HostId(3)}, 10.0, 20.0));
  ASSERT_FALSE(quota.has_value());
  EXPECT_EQ(quota.error().code, common::ErrorCode::kQuotaExceeded);
  EXPECT_EQ(env.tenancy_stats().reservations_rejected, 1u);

  // Only the owner can cancel; unknown tickets are kNotFound.
  auto foreign_cancel = env.cancel_reservation(rival, *ticket);
  ASSERT_FALSE(foreign_cancel.ok());
  EXPECT_EQ(foreign_cancel.error().code, common::ErrorCode::kPermissionDenied);
  EXPECT_EQ(env.cancel_reservation(session, ReservationTicket{999}).error().code,
            common::ErrorCode::kNotFound);

  // Cancelling frees both the interval and the quota share.
  ASSERT_TRUE(env.cancel_reservation(session, *ticket).ok());
  EXPECT_EQ(env.reservation_window(*ticket), nullptr);
  EXPECT_TRUE(env.reserve(session, request_for({HostId(3)}, 10.0, 20.0))
                  .has_value());
}

TEST(ReservationApi, SubmitValidatesTheTicket) {
  VdceEnvironment env(make_campus_pair(5), quiet_options());
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  ASSERT_TRUE(env.try_add_user("rival", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();
  Session rival = env.login(common::SiteId(0), "rival", "p").value();

  RunOptions run;
  run.reservation = ReservationTicket{42};  // never issued
  auto unknown = env.submit_application(tiny_app("a"), session, run);
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().code, common::ErrorCode::kNotFound);

  auto ticket = env.reserve(session, request_for({HostId(1)}, 1.0, 2.0));
  ASSERT_TRUE(ticket.has_value());

  // Someone else's ticket is a permission problem, not a scheduling one.
  RunOptions stolen;
  stolen.reservation = *ticket;
  auto forged = env.submit_application(tiny_app("b"), rival, stolen);
  ASSERT_FALSE(forged.has_value());
  EXPECT_EQ(forged.error().code, common::ErrorCode::kPermissionDenied);

  // A window that has already closed cannot be redeemed.
  env.run_for(3.0);
  auto late = env.submit_application(tiny_app("c"), session, stolen);
  ASSERT_FALSE(late.has_value());
  EXPECT_EQ(late.error().code, common::ErrorCode::kInvalidArgument);
}

// --- end-to-end: the parked submission and its phase ------------------------

TEST(ReservationPipeline, ParksUntilWindowOpensWithExactPhaseTiling) {
  EnvironmentOptions options = quiet_options();
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  const std::vector<HostId> booked{HostId(1), HostId(2), HostId(3)};
  const double kOpens = 5.0;
  auto ticket = env.reserve(session, request_for(booked, kOpens, 500.0));
  ASSERT_TRUE(ticket.has_value()) << ticket.error().to_string();

  RunOptions run;
  run.real_kernels = false;
  run.reservation = *ticket;
  auto handle = env.submit_application(tiny_app("reserved"), session, run);
  ASSERT_TRUE(handle.has_value()) << handle.error().to_string();
  EXPECT_EQ(env.app_state(*handle).value(), AppState::kReserved);

  auto report = env.wait(*handle);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  ASSERT_TRUE(report->success) << report->failure_reason;

  // The submission parked from admission (t=0) to exactly the window start.
  EXPECT_EQ(report->admitted, 0.0);
  EXPECT_EQ(report->released, kOpens);
  EXPECT_GE(report->exec_started, kOpens);

  // Placement never left the booked machines.
  for (const runtime::TaskOutcome& o : report->outcomes) {
    EXPECT_TRUE(std::find(booked.begin(), booked.end(), o.host) != booked.end())
        << "task on unbooked host " << o.host.value();
  }

  // The reservation phase tiles exactly into [enqueued, completed] alongside
  // contention, scheduling, setup, and execution.
  const runtime::ExecutionReport::PhaseBreakdown b = report->breakdown();
  EXPECT_DOUBLE_EQ(b.reservation, kOpens);
  EXPECT_DOUBLE_EQ(report->enqueued + b.contention, report->admitted);
  EXPECT_DOUBLE_EQ(report->admitted + b.reservation, report->released);
  EXPECT_DOUBLE_EQ(report->released + b.scheduling, report->submitted);
  EXPECT_DOUBLE_EQ(report->submitted + b.setup, report->exec_started);
  EXPECT_DOUBLE_EQ(report->exec_started + b.execution, report->completed);
  EXPECT_DOUBLE_EQ(b.total(), report->completed - report->enqueued);

  // The wait surfaces everywhere the contention phase does: the causal
  // view, the trace stream, and the report narrative.
  EXPECT_DOUBLE_EQ(report->causal_view().reservation(), kOpens);
  EXPECT_DOUBLE_EQ(report->critical_path().phases.reservation, kOpens);
  EXPECT_NE(env.trace().to_jsonl().find("app.reservation"), std::string::npos);
  EXPECT_NE(report->describe(tiny_app("reserved")).find("reservation wait"),
            std::string::npos);

  // The booking is spent by its run: the window is released and a cancel of
  // the spent ticket is a clean kNotFound.
  EXPECT_EQ(env.reservation_window(*ticket), nullptr);
  EXPECT_EQ(env.cancel_reservation(session, *ticket).error().code,
            common::ErrorCode::kNotFound);
}

TEST(ReservationPipeline, PendingWindowBlocksForeignWorkWhenBackfillDisabled) {
  EnvironmentOptions options = quiet_options();
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("owner", "p").ok());
  ASSERT_TRUE(env.try_add_user("walkin", "p").ok());
  Session owner = env.login(common::SiteId(0), "owner", "p").value();
  Session walkin = env.login(common::SiteId(0), "walkin", "p").value();

  // Book every machine: with backfill disabled, nothing foreign may start
  // ahead of the window, so the walk-in submission fails typed.
  std::vector<HostId> all;
  for (const net::Host& h : env.hosts()) all.push_back(h.id);
  auto ticket = env.reserve(owner, request_for(all, 50.0, 100.0));
  ASSERT_TRUE(ticket.has_value()) << ticket.error().to_string();

  RunOptions run;
  run.real_kernels = false;
  run.sched.backfill = false;  // per-run knob, like run.sched.objective
  auto handle = env.submit_application(tiny_app("walkin"), walkin, run);
  ASSERT_TRUE(handle.has_value());
  auto report = env.wait(*handle);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kNoFeasibleResource);
  EXPECT_NE(report.error().message.find("reservation"), std::string::npos)
      << report.error().message;
}

// The no-delay invariant: with conservative backfill ON, foreign work may
// use booked machines ahead of the window only if it provably finishes
// first — so the reserved application still starts exactly on time.
TEST(ReservationPipeline, BackfillNeverDelaysTheCommittedWindowStart) {
  EnvironmentOptions options = quiet_options();
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("owner", "p").ok());
  ASSERT_TRUE(env.try_add_user("walkin", "p").ok());
  Session owner = env.login(common::SiteId(0), "owner", "p").value();
  Session walkin = env.login(common::SiteId(0), "walkin", "p").value();

  // Book every machine so the walk-in app has no choice but to backfill.
  std::vector<HostId> all;
  for (const net::Host& h : env.hosts()) all.push_back(h.id);
  const double kOpens = 60.0;
  auto ticket = env.reserve(owner, request_for(all, kOpens, 300.0));
  ASSERT_TRUE(ticket.has_value()) << ticket.error().to_string();

  RunOptions reserved_run;
  reserved_run.real_kernels = false;
  reserved_run.reservation = *ticket;
  auto reserved = env.submit_application(tiny_app("reserved"), owner,
                                         reserved_run);
  ASSERT_TRUE(reserved.has_value());

  RunOptions walkin_run;
  walkin_run.real_kernels = false;
  auto filler = env.submit_application(tiny_app("filler"), walkin, walkin_run);
  ASSERT_TRUE(filler.has_value());
  ASSERT_TRUE(env.drain().ok());

  auto filler_report = env.report(*filler);
  ASSERT_TRUE(filler_report.has_value());
  ASSERT_TRUE(filler_report->success) << filler_report->failure_reason;
  auto reserved_report = env.report(*reserved);
  ASSERT_TRUE(reserved_report.has_value());
  ASSERT_TRUE(reserved_report->success) << reserved_report->failure_reason;

  // The backfilled app ran entirely ahead of the window...
  for (const runtime::TaskOutcome& o : filler_report->outcomes) {
    EXPECT_LE(o.finished, kOpens)
        << "backfilled task outlived the committed window start";
  }
  // ...and the committed window opened exactly on time for its owner.
  EXPECT_EQ(reserved_report->released, kOpens);
  EXPECT_GE(reserved_report->exec_started, kOpens);
  for (const runtime::TaskOutcome& o : reserved_report->outcomes) {
    EXPECT_GE(o.started, kOpens);
  }
}

// --- determinism -------------------------------------------------------------

TEST(ReservationDeterminism, BookingAndBackfillReplayByteIdentically) {
  auto run_once = [] {
    EnvironmentOptions options;
    options.runtime.exec_noise_cv = 0.0;
    options.trace.enabled = true;
    VdceEnvironment env(make_campus_pair(11), options);
    env.bring_up();
    EXPECT_TRUE(env.try_add_user("owner", "p").ok());
    EXPECT_TRUE(env.try_add_user("walkin", "p").ok());
    Session owner = env.login(common::SiteId(0), "owner", "p").value();
    Session walkin = env.login(common::SiteId(0), "walkin", "p").value();

    auto ticket = env.reserve(
        owner, request_for({HostId(1), HostId(2), HostId(3)}, 40.0, 200.0));
    EXPECT_TRUE(ticket.has_value());
    RunOptions reserved_run;
    reserved_run.real_kernels = false;
    reserved_run.reservation = *ticket;
    EXPECT_TRUE(env.submit_application(tiny_app("reserved"), owner,
                                       reserved_run)
                    .has_value());
    RunOptions run;
    run.real_kernels = false;
    EXPECT_TRUE(env.submit_application(tiny_app("fill-a"), walkin, run)
                    .has_value());
    EXPECT_TRUE(env.submit_application(tiny_app("fill-b"), walkin, run)
                    .has_value());
    EXPECT_TRUE(env.drain().ok());
    return env.trace().to_jsonl();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace vdce
