// Chaos tests for the economy plane (docs/ECONOMY.md).
//
// A budgeted application that loses hosts mid-run must never overspend:
// recovery re-placements are budget-gated, so every surviving run's final
// quote stays within the admitted budget, and when no affordable machine
// exists the run fails with "no affordable resource" instead of silently
// drifting past the contract.  The whole scenario — crash, recovery,
// re-quote — must also replay byte-identically, because spend is quoted
// from deterministic predictions, never metered from noisy actuals.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "afg/generate.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions chaos_options() {
  EnvironmentOptions options;
  options.trace.enabled = true;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  return options;
}

Session login(VdceEnvironment& env) {
  env.add_user("u", "p");
  return env.login(common::SiteId(0), "u", "p").value();
}

afg::Afg chaos_workload(std::uint64_t seed) {
  common::Rng rng(900 + seed);
  afg::LayeredDagSpec spec;
  spec.tasks = 15;
  spec.width = 4;
  spec.min_mflop = 2000;
  spec.max_mflop = 6000;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  return graph;
}

/// Kill two random non-server hosts at random times (coordinator fail-over
/// is documented as out of scope, so site servers are spared).
void schedule_crashes(VdceEnvironment& env, std::uint64_t seed) {
  common::Rng rng(1700 + seed);
  std::set<common::HostId> protected_hosts;
  for (const net::Site& s : env.topology().sites()) {
    protected_hosts.insert(s.server);
  }
  int killed = 0;
  while (killed < 2) {
    const net::Host& h = env.topology().hosts()[rng.pick_index(
        env.topology().host_count())];
    if (protected_hosts.contains(h.id)) continue;
    protected_hosts.insert(h.id);
    double when = rng.uniform(2.0, 40.0);
    env.engine().schedule(when, [&env, id = h.id] {
      env.topology().set_host_up(id, false);
    });
    ++killed;
  }
}

/// One full chaos scenario: probe the unconstrained quote in a crash-free
/// twin environment, then rerun under `budget_factor` x that quote with two
/// mid-run host deaths.  Returns the trace + report narrative for replay
/// comparison after asserting the budget contract.
std::string run_scenario(std::uint64_t seed, double budget_factor) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  afg::Afg graph = chaos_workload(seed);

  // Crash-free probe: learn the admitted quote S0.
  double s0 = 0.0;
  {
    VdceEnvironment env(make_campus_pair(50 + seed), chaos_options());
    env.bring_up();
    auto session = login(env);
    RunOptions run;
    run.real_kernels = false;
    run.budget = 1e12;
    auto report = env.run_application(graph, session, run);
    EXPECT_TRUE(report.has_value()) << report.error().message;
    if (!report.has_value()) return {};
    s0 = report->spend();
    EXPECT_GT(s0, 0.0);
  }

  // Chaos run under the real budget.
  VdceEnvironment env(make_campus_pair(50 + seed), chaos_options());
  env.bring_up();
  auto session = login(env);
  schedule_crashes(env, seed);
  RunOptions run;
  run.real_kernels = false;
  run.budget = s0 * budget_factor;
  auto report = env.run_application(graph, session, run);

  std::string out = env.trace().to_jsonl();
  if (!report.has_value()) {
    // Admission may reject when the factor leaves no headroom at all —
    // but only ever with the typed budget error.
    EXPECT_EQ(report.error().code, common::ErrorCode::kBudgetExceeded)
        << report.error().message;
    out += report.error().to_string();
    return out;
  }
  out += report->describe(graph);
  EXPECT_EQ(report->budget, run.budget);
  if (report->success) {
    // The contract: an admitted, surviving run never overspends, crashes
    // and re-placements included.
    EXPECT_LE(report->spend(), report->budget);
    EXPECT_TRUE(report->within_budget());
    EXPECT_GT(report->spend(), 0.0);
    EXPECT_EQ(report->outcomes.size(), graph.task_count());
  } else {
    // The only budget-related way to die is the affordable-resource gate.
    if (report->failure_reason.find("budget") != std::string::npos) {
      EXPECT_NE(report->failure_reason.find("no affordable resource"),
                std::string::npos)
          << report->failure_reason;
    }
  }
  return out;
}

class EconChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EconChaos, CrashRecoveryNeverOverspendsWithLooseBudget) {
  // 1.5x headroom: recovery should normally find an affordable machine, and
  // whenever the run survives its final quote must respect the budget.
  (void)run_scenario(GetParam(), 1.5);
}

TEST_P(EconChaos, CrashRecoveryNeverOverspendsWithExactBudget) {
  // Budget == the crash-free quote: any re-placement that costs one cent
  // more is unaffordable, so this drives the "no affordable resource" path
  // whenever the cheapest replacement is dearer than the original.  Either
  // way the contract holds: survive within budget or fail typed.
  (void)run_scenario(GetParam(), 1.0);
}

TEST_P(EconChaos, ChaosScenariosReplayByteIdentically) {
  const std::string first = run_scenario(GetParam(), 1.5);
  const std::string second = run_scenario(GetParam(), 1.5);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "chaos replay diverges";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EconChaos,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace vdce
