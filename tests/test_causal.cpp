// Tests for the causal-analysis layer (obs/causal.hpp): critical-path
// tiling, gap attribution, what-if slack, per-resource timelines, offline
// extraction from JSONL exports, exporter round-trips, the flight recorder,
// and the zero-cost discipline of the disabled observability path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "obs/causal.hpp"
#include "obs/obs.hpp"
#include "vdce/vdce.hpp"

// ---- global allocation counter ---------------------------------------------
// Replacement operator new that counts every heap allocation in the test
// binary, so the zero-cost tests can assert that the always-on flight
// recorder and the disabled-tracing call-site pattern allocate nothing.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vdce {
namespace {

using obs::causal::AppTrace;
using obs::causal::CriticalPath;
using obs::causal::HopKind;
using obs::causal::TaskExec;
using obs::causal::Transfer;

// ---- hand-built traces ------------------------------------------------------

/// Two tasks in series with a gap between them:
///   startup [0.5,1]  t0 runs [1,3] on host 2  (gap [3,4])  t1 runs [4,6] on
///   host 3, completion notice lands at 6.25.
AppTrace make_chain() {
  AppTrace app;
  app.app = 1;
  app.name = "chain";
  app.exec_started = 0.5;
  app.completed = 6.25;
  TaskExec t0;
  t0.task = 0;
  t0.name = "t0";
  t0.started = 1.0;
  t0.finished = 3.0;
  t0.host = 2;
  TaskExec t1;
  t1.task = 1;
  t1.name = "t1";
  t1.started = 4.0;
  t1.finished = 6.0;
  t1.host = 3;
  t1.deps = {0};
  app.tasks = {t0, t1};
  return app;
}

TEST(CriticalPath, TilesHandBuiltChainWithTransferAttribution) {
  AppTrace app = make_chain();
  Transfer tr;
  tr.src_task = 0;
  tr.dst_task = 1;
  tr.started = 3.0;
  tr.finished = 3.8;
  tr.src_host = 2;
  tr.dst_host = 3;
  tr.bytes = 1e5;
  app.transfers.push_back(tr);

  const CriticalPath cp = obs::causal::critical_path(app);
  ASSERT_EQ(cp.hops.size(), 6u);
  EXPECT_EQ(cp.hops[0].kind, HopKind::kStartup);
  EXPECT_EQ(cp.hops[1].kind, HopKind::kCompute);
  EXPECT_EQ(cp.hops[2].kind, HopKind::kTransfer);
  EXPECT_EQ(cp.hops[3].kind, HopKind::kWait);
  EXPECT_EQ(cp.hops[4].kind, HopKind::kCompute);
  EXPECT_EQ(cp.hops[5].kind, HopKind::kCompletion);

  // Contiguous tiling of [exec_started, completed].
  EXPECT_DOUBLE_EQ(cp.hops.front().start, app.exec_started);
  EXPECT_DOUBLE_EQ(cp.hops.back().end, app.completed);
  for (std::size_t i = 0; i + 1 < cp.hops.size(); ++i) {
    EXPECT_DOUBLE_EQ(cp.hops[i].end, cp.hops[i + 1].start) << "hop " << i;
  }

  EXPECT_DOUBLE_EQ(cp.phases.startup, 0.5);
  EXPECT_DOUBLE_EQ(cp.phases.compute, 4.0);
  EXPECT_DOUBLE_EQ(cp.phases.transfer, 0.8);
  EXPECT_NEAR(cp.phases.wait, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(cp.phases.completion, 0.25);
  EXPECT_DOUBLE_EQ(cp.phases.recovery, 0.0);
  EXPECT_NEAR(cp.phases.total(), cp.makespan, 1e-12);
  EXPECT_DOUBLE_EQ(cp.makespan, 5.75);
  ASSERT_EQ(cp.task_chain.size(), 2u);
  EXPECT_EQ(cp.task_chain[0], 0u);
  EXPECT_EQ(cp.task_chain[1], 1u);
}

TEST(CriticalPath, RecoveryMarkSplitsUncoveredGap) {
  AppTrace app = make_chain();
  obs::causal::RecoveryMark mark;
  mark.at = 3.2;
  mark.task = 1;
  mark.reason = "host_down";
  app.recoveries.push_back(mark);

  const CriticalPath cp = obs::causal::critical_path(app);
  // startup, compute t0, wait [3,3.2], recovery [3.2,4], compute t1,
  // completion.
  ASSERT_EQ(cp.hops.size(), 6u);
  EXPECT_EQ(cp.hops[2].kind, HopKind::kWait);
  EXPECT_DOUBLE_EQ(cp.hops[2].start, 3.0);
  EXPECT_DOUBLE_EQ(cp.hops[2].end, 3.2);
  EXPECT_EQ(cp.hops[3].kind, HopKind::kRecovery);
  EXPECT_DOUBLE_EQ(cp.hops[3].start, 3.2);
  EXPECT_DOUBLE_EQ(cp.hops[3].end, 4.0);
  EXPECT_NEAR(cp.phases.recovery, 0.8, 1e-12);
  EXPECT_NEAR(cp.phases.total(), cp.makespan, 1e-12);
}

TEST(WhatIf, ExactSlackOnHandBuiltChain) {
  const AppTrace app = make_chain();
  const auto results = obs::causal::what_if(app, 2.0);
  ASSERT_EQ(results.size(), 2u);
  for (const obs::causal::WhatIf& w : results) {
    EXPECT_TRUE(w.on_critical_path);
    // Halving either 2 s task saves exactly 1 s: the dependent slides left
    // with its lag preserved and the 0.25 s coordinator tail is unchanged.
    EXPECT_DOUBLE_EQ(w.new_makespan, 4.75);
    EXPECT_NEAR(w.makespan_delta_pct, (4.75 - 5.75) / 5.75 * 100.0, 1e-9);
  }
  // Equal deltas tie-break on task id.
  EXPECT_EQ(results[0].task, 0u);
  EXPECT_EQ(results[1].task, 1u);
}

TEST(WhatIf, SpeedupOfOneReproducesOriginalMakespan) {
  const AppTrace app = make_chain();
  for (const obs::causal::WhatIf& w : obs::causal::what_if(app, 1.0)) {
    EXPECT_DOUBLE_EQ(w.new_makespan, app.makespan());
    EXPECT_DOUBLE_EQ(w.makespan_delta_pct, 0.0);
  }
}

TEST(Timeline, HostLanesAndIdleAttribution) {
  AppTrace app = make_chain();
  Transfer tr;
  tr.src_task = 0;
  tr.dst_task = 1;
  tr.started = 3.0;
  tr.finished = 3.8;
  tr.src_host = 2;
  tr.dst_host = 3;
  tr.bytes = 1e5;
  app.transfers.push_back(tr);

  const obs::causal::Timeline tl = obs::causal::timeline(
      app, {{2, 0, "m2"}, {3, 1, "m3"}});
  EXPECT_DOUBLE_EQ(tl.horizon_start, 0.5);
  EXPECT_DOUBLE_EQ(tl.horizon_end, 6.25);
  ASSERT_EQ(tl.hosts.size(), 2u);

  const obs::causal::HostTimeline& h2 = tl.hosts[0];
  EXPECT_EQ(h2.host, 2u);
  EXPECT_EQ(h2.name, "m2");
  EXPECT_EQ(h2.site, 0u);
  EXPECT_DOUBLE_EQ(h2.busy_time, 2.0);
  EXPECT_NEAR(h2.utilization, 2.0 / 5.75, 1e-12);

  // Host 3 idles [0.5,4] and [6,6.25]; the inbound transfer covers 0.8 s.
  const obs::causal::HostTimeline& h3 = tl.hosts[1];
  EXPECT_NEAR(h3.idle_transfer, 0.8, 1e-12);
  EXPECT_NEAR(h3.idle_wait, (6.25 - 0.5) - 2.0 - 0.8, 1e-12);
  EXPECT_NEAR(h3.busy_time + h3.idle_transfer + h3.idle_wait, 5.75, 1e-12);

  ASSERT_EQ(tl.links.size(), 1u);
  EXPECT_EQ(tl.links[0].name, "m2 -> m3");
  EXPECT_DOUBLE_EQ(tl.links[0].bytes, 1e5);
}

// ---- environment-level: the acceptance-criteria tests ----------------------

afg::Afg diamond_graph() {
  editor::AppBuilder app("causal-diamond");
  auto left = app.task("left", "synthetic.w800").output_data(2e5);
  auto right = app.task("right", "synthetic.w600").output_data(2e5);
  auto combine = app.task("combine", "synthetic.w400").output_data(5e4);
  auto finish = app.task("finish", "synthetic.w200");
  app.link(left, combine).value();
  app.link(right, combine).value();
  app.link(combine, finish).value();
  return app.build().value();
}

common::Expected<runtime::ExecutionReport> run_diamond(VdceEnvironment& env) {
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();
  RunOptions run;
  run.real_kernels = false;
  return env.run_application(diamond_graph(), session, run);
}

EnvironmentOptions traced_options() {
  EnvironmentOptions options;
  options.metrics.enabled = true;
  options.trace.enabled = true;
  return options;
}

TEST(CriticalPath, HopDurationsSumToMakespanOnDagExample) {
  VdceEnvironment env(make_campus_pair(), traced_options());
  auto report = run_diamond(env);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  ASSERT_TRUE(report->success);

  const CriticalPath cp = report->critical_path();
  ASSERT_FALSE(cp.hops.empty());
  EXPECT_DOUBLE_EQ(cp.hops.front().start, report->exec_started);
  EXPECT_DOUBLE_EQ(cp.hops.back().end, report->completed);
  for (std::size_t i = 0; i + 1 < cp.hops.size(); ++i) {
    EXPECT_DOUBLE_EQ(cp.hops[i].end, cp.hops[i + 1].start) << "hop " << i;
  }
  double sum = 0.0;
  for (const obs::causal::CriticalHop& hop : cp.hops) sum += hop.duration();
  EXPECT_NEAR(sum, report->makespan(), 1e-9);
  EXPECT_NEAR(cp.phases.total(), cp.makespan, 1e-9);
  EXPECT_DOUBLE_EQ(cp.makespan, report->makespan());

  // The walk ends at the sink task, and every chain link is a real edge.
  ASSERT_FALSE(cp.task_chain.empty());
  EXPECT_EQ(cp.task_chain.back(), 3u);  // "finish"

  // The what-if table marks exactly the chain tasks as critical.
  for (const obs::causal::WhatIf& w :
       obs::causal::what_if(report->causal_view(), 2.0)) {
    const bool in_chain = std::find(cp.task_chain.begin(), cp.task_chain.end(),
                                    w.task) != cp.task_chain.end();
    EXPECT_EQ(w.on_critical_path, in_chain) << "task " << w.task;
  }
}

TEST(CriticalPath, OfflineExtractionReproducesLiveCriticalPath) {
  VdceEnvironment env(make_campus_pair(), traced_options());
  auto report = run_diamond(env);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->success);

  const std::string jsonl = env.trace().to_jsonl();
  auto parsed = obs::parse_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->tracks.size(), env.topology().host_count());

  auto apps = obs::causal::extract_apps(*parsed);
  ASSERT_EQ(apps.size(), 1u);
  const AppTrace& offline = apps[0];
  EXPECT_EQ(offline.tasks.size(), 4u);
  EXPECT_FALSE(offline.transfers.empty());
  // The JSONL export renders times with 9 significant digits, so offline
  // values agree with the live report to that precision, not bit-for-bit.
  EXPECT_NEAR(offline.exec_started, report->exec_started, 1e-6);
  EXPECT_NEAR(offline.completed, report->completed, 1e-6);

  const CriticalPath live = report->critical_path();
  const CriticalPath from_trace = obs::causal::critical_path(offline);
  EXPECT_EQ(from_trace.task_chain, live.task_chain);
  EXPECT_NEAR(from_trace.makespan, live.makespan, 1e-6);
  EXPECT_NEAR(from_trace.phases.total(), from_trace.makespan, 1e-9);
  // The trace knows about transfers the in-process report does not, so its
  // gap attribution is at least as refined: compute time matches to export
  // precision.
  EXPECT_NEAR(from_trace.phases.compute, live.phases.compute, 1e-6);

  // The rendered offline report holds every section.
  const std::string text =
      obs::causal::render_report(offline, parsed->tracks);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("hosts:"), std::string::npos);
  EXPECT_NE(text.find("what-if"), std::string::npos);
}

// ---- exporter round-trips ---------------------------------------------------

TEST(RoundTrip, ParsedJsonlReRendersByteIdentical) {
  VdceEnvironment env(make_campus_pair(), traced_options());
  auto report = run_diamond(env);
  ASSERT_TRUE(report.has_value());

  const std::string jsonl = env.trace().to_jsonl();
  auto parsed = obs::parse_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->events.size(), env.trace().size());
  EXPECT_EQ(parsed->tracks.size(), env.trace().tracks().size());
  EXPECT_EQ(obs::render_jsonl(parsed->tracks, parsed->events), jsonl);

  // Causal tags survive the round trip on execution spans.
  bool saw_deps = false;
  for (const obs::TraceEvent& ev : parsed->events) {
    if (ev.name == "exec.task" && !ev.causal.deps.empty()) saw_deps = true;
  }
  EXPECT_TRUE(saw_deps);
}

TEST(RoundTrip, ParseRejectsMalformedLinesWithLineNumber) {
  auto missing = obs::parse_jsonl("{\"phase\":\"span\",\"cat\":\"x\"}\n");
  ASSERT_FALSE(missing.has_value());
  EXPECT_NE(missing.error().message.find("line 1"), std::string::npos);

  auto garbage = obs::parse_jsonl(
      "{\"meta\":\"track\",\"track\":0,\"site\":0,\"name\":\"m\"}\nnot json\n");
  ASSERT_FALSE(garbage.has_value());
  EXPECT_NE(garbage.error().message.find("line 2"), std::string::npos);
}

TEST(ChromeExport, MapsPidToSiteAndTidToHost) {
  obs::TraceSink sink(obs::TraceOptions{.enabled = true});
  sink.set_tracks({{4, 1, "m4"}});
  sink.span("exec", "exec.task", 1.0, 2.0, 4, {},
            obs::Causal{.app = 1, .task = 2});
  const std::string chrome = sink.to_chrome_trace();
  // pid = site + 1 (pid 0 is the control plane), tid = host track.
  EXPECT_NE(chrome.find("\"pid\":2,\"tid\":4"), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"site 1\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"m4\""), std::string::npos);
  EXPECT_NE(chrome.find("\"causal_app\":1"), std::string::npos);
  EXPECT_NE(chrome.find("\"causal_task\":2"), std::string::npos);
}

// ---- flight recorder --------------------------------------------------------

TEST(Flight, RingWrapsAndKeepsNewestOldestFirst) {
  obs::FlightRecorder recorder(obs::FlightOptions{.capacity = 4});
  for (int i = 0; i < 10; ++i) {
    recorder.record(static_cast<double>(i), obs::FlightCode::kTaskDone, 0,
                    static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(recorder.total(), 10u);
  EXPECT_EQ(recorder.capacity(), 4u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);  // bounded memory: only the ring survives
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].t, static_cast<double>(6 + i));
  }
  const std::string jsonl = recorder.render_jsonl();
  EXPECT_NE(jsonl.find("\"meta\":\"flight\",\"total\":10,\"retained\":4"),
            std::string::npos);
}

TEST(Flight, DisabledRecorderRecordsNothing) {
  obs::FlightRecorder recorder(obs::FlightOptions{.enabled = false});
  recorder.record(1.0, obs::FlightCode::kHostDown, 3);
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(Flight, PostMortemDumpsOnRecoveryEscalation) {
  net::Topology topology = make_campus_pair(13);
  const net::Site& site0 = topology.site(common::SiteId(0));
  const std::string host_a = topology.host(site0.hosts[1]).spec.name;
  const std::string host_b = topology.host(site0.hosts[2]).spec.name;

  chaos::FaultPlan plan;
  plan.name("escalate").crash(host_a, 1.5);
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  // Echo detection (~0.5 s) must beat the coordinator's stall sweep to the
  // single recovery action, so the escalation story reads host_down ->
  // escalation rather than a bare stall.
  options.runtime.echo_period = 0.5;
  options.runtime.max_app_recovery_actions = 0;  // first recovery escalates
  options.faults = std::move(plan);
  const std::string path = "test_causal_postmortem.jsonl";
  options.flight.postmortem_path = path;
  std::filesystem::remove(path);

  VdceEnvironment env(std::move(topology), options);
  ASSERT_TRUE(env.try_bring_up().ok());
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  editor::AppBuilder builder("pinned-chain");
  auto s0 = builder.task("s0", "synthetic.w2000")
                .prefer_machine(host_a)
                .output_data(1e5);
  auto s1 = builder.task("s1", "synthetic.w2000").prefer_machine(host_b);
  ASSERT_TRUE(builder.link(s0, s1).has_value());

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(builder.build().value(), session, run);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_FALSE(report->success);  // budget 0: the crash escalates

  // The environment dumped the ring on the failed run, and the dump ends
  // with the escalation story: host down -> escalation -> app failed.
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"code\":\"host_down\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"code\":\"escalation\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"code\":\"app_done\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"meta\":\"flight\""), std::string::npos) << dump;
  EXPECT_GT(env.flight_recorder().total(), 0u);
  std::filesystem::remove(path);
}

TEST(Flight, SuccessfulRunLeavesNoPostMortem) {
  EnvironmentOptions options = traced_options();
  const std::string path = "test_causal_no_postmortem.jsonl";
  options.flight.postmortem_path = path;
  std::filesystem::remove(path);
  VdceEnvironment env(make_campus_pair(), options);
  auto report = run_diamond(env);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->success);
  EXPECT_GT(env.flight_recorder().total(), 0u);  // the ring still recorded
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---- zero-cost discipline ---------------------------------------------------

TEST(ZeroCost, EnabledFlightRecorderNeverAllocatesPerRecord) {
  obs::FlightRecorder recorder(obs::FlightOptions{.capacity = 128});
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    recorder.record(static_cast<double>(i), obs::FlightCode::kTaskDone, 1, 2,
                    3, 4.0);
  }
  EXPECT_EQ(g_allocations.load(), before);  // wraps without allocating
}

TEST(ZeroCost, DisabledObservabilityPathAllocatesNothing) {
  obs::TraceSink sink;  // default: disabled
  obs::FlightRecorder flight(obs::FlightOptions{.enabled = false});
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    // The exact guarded pattern every instrumentation site uses: with the
    // sink off, no record (and none of its strings) is ever built.
    if (sink.enabled()) {
      sink.instant("exec", "exec.run_started", 1.0, 0,
                   {obs::arg("app", std::uint32_t{1})});
    }
    flight.record(1.0, obs::FlightCode::kTaskStart, 0, 1, 2);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

}  // namespace
}  // namespace vdce
