// Unit tests for the network substrate: topology, routing, fabric delivery,
// failure semantics.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace vdce::net {
namespace {

Topology two_sites() {
  Topology t;
  auto s0 = t.add_site("alpha", LinkSpec{0.001, 1e6});
  auto s1 = t.add_site("beta", LinkSpec{0.002, 2e6});
  t.add_host(s0, HostSpec{"a0", "10.0.0.1", "sparc", "sunos", "SUN sparc", 100, 128}, 0);
  t.add_host(s0, HostSpec{"a1", "10.0.0.2", "sparc", "sunos", "SUN sparc", 200, 256}, 0);
  t.add_host(s0, HostSpec{"a2", "10.0.0.3", "x86", "linux", "Intel pentium", 150, 64}, 1);
  t.add_host(s1, HostSpec{"b0", "10.1.0.1", "mips", "irix", "SGI", 120, 512}, 0);
  t.add_host(s1, HostSpec{"b1", "10.1.0.2", "mips", "irix", "SGI", 90, 128}, 0);
  t.set_wan_link(s0, s1, LinkSpec{0.030, 1e5});
  return t;
}

TEST(Topology, SiteAndHostBookkeeping) {
  Topology t = two_sites();
  EXPECT_EQ(t.site_count(), 2u);
  EXPECT_EQ(t.host_count(), 5u);
  EXPECT_EQ(t.site(common::SiteId(0)).hosts.size(), 3u);
  EXPECT_EQ(t.site(common::SiteId(1)).hosts.size(), 2u);
}

TEST(Topology, FirstHostBecomesServer) {
  Topology t = two_sites();
  EXPECT_EQ(t.site(common::SiteId(0)).server, common::HostId(0));
  EXPECT_EQ(t.site(common::SiteId(1)).server, common::HostId(3));
}

TEST(Topology, GroupLeadership) {
  Topology t = two_sites();
  const Host& a0 = t.host(common::HostId(0));
  const Host& a2 = t.host(common::HostId(2));
  EXPECT_NE(a0.group, a2.group);  // different group indices
  EXPECT_EQ(t.group(a0.group).leader, common::HostId(0));
  EXPECT_EQ(t.group(a2.group).leader, common::HostId(2));
  EXPECT_EQ(t.groups_in_site(common::SiteId(0)).size(), 2u);
}

TEST(Topology, FindByName) {
  Topology t = two_sites();
  EXPECT_EQ(t.find_host("b1").value(), common::HostId(4));
  EXPECT_FALSE(t.find_host("nope").has_value());
  EXPECT_EQ(t.find_site("beta").value(), common::SiteId(1));
}

TEST(Topology, LinkSelection) {
  Topology t = two_sites();
  // Same host: effectively free.
  auto self = t.link_between(common::HostId(0), common::HostId(0));
  EXPECT_DOUBLE_EQ(self.latency, 0.0);
  // Intra-site: the site LAN.
  auto lan = t.link_between(common::HostId(0), common::HostId(2));
  EXPECT_DOUBLE_EQ(lan.latency, 0.001);
  // Inter-site: the declared WAN link.
  auto wan = t.link_between(common::HostId(0), common::HostId(3));
  EXPECT_DOUBLE_EQ(wan.latency, 0.030);
}

TEST(Topology, TransferTimeFormula) {
  Topology t = two_sites();
  // 1e5 bytes over the 0.030s/1e5Bps WAN = 0.030 + 1.0.
  EXPECT_NEAR(t.transfer_time(common::HostId(0), common::HostId(3), 1e5),
              1.030, 1e-9);
}

TEST(Topology, DefaultWanForUndeclaredPairs) {
  Topology t;
  auto s0 = t.add_site("a", LinkSpec{0.001, 1e6});
  auto s1 = t.add_site("b", LinkSpec{0.001, 1e6});
  t.add_host(s0, HostSpec{}, 0);
  t.add_host(s1, HostSpec{}, 0);
  t.set_default_wan(LinkSpec{0.5, 1e3});
  EXPECT_DOUBLE_EQ(t.wan_link(s0, s1).latency, 0.5);
}

TEST(Topology, NearestSitesOrderedByLatency) {
  Topology t;
  auto s0 = t.add_site("s0", LinkSpec{});
  auto s1 = t.add_site("s1", LinkSpec{});
  auto s2 = t.add_site("s2", LinkSpec{});
  auto s3 = t.add_site("s3", LinkSpec{});
  t.set_wan_link(s0, s1, LinkSpec{0.050, 1e6});
  t.set_wan_link(s0, s2, LinkSpec{0.010, 1e6});
  t.set_wan_link(s0, s3, LinkSpec{0.030, 1e6});
  auto nearest = t.nearest_sites(s0, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0], s2);
  EXPECT_EQ(nearest[1], s3);
  EXPECT_EQ(t.nearest_sites(s0, 10).size(), 3u);
  EXPECT_TRUE(t.nearest_sites(s0, 0).empty());
}

TEST(Topology, DynamicState) {
  Topology t = two_sites();
  common::HostId h(1);
  EXPECT_TRUE(t.host_up(h));
  t.set_host_up(h, false);
  EXPECT_FALSE(t.host_up(h));
  t.set_cpu_load(h, 1.5);
  EXPECT_DOUBLE_EQ(t.host(h).state.cpu_load, 1.5);
  t.add_cpu_load(h, -2.0);  // clamped at zero
  EXPECT_DOUBLE_EQ(t.host(h).state.cpu_load, 0.0);
}

// ---- fabric --------------------------------------------------------------------

struct FabricFixture : ::testing::Test {
  FabricFixture() : topology(two_sites()), fabric(engine, topology) {}
  sim::Engine engine;
  Topology topology;
  Fabric fabric;
};

TEST_F(FabricFixture, DeliversAfterTransferTime) {
  std::vector<double> arrival;
  fabric.bind(common::HostId(3), [&](const Message&) {
    arrival.push_back(engine.now());
  });
  auto when = fabric.send(Message{common::HostId(0), common::HostId(3),
                                  "test", 1e5, {}});
  ASSERT_TRUE(when.has_value());
  EXPECT_NEAR(*when, 1.030, 1e-9);
  engine.run();
  ASSERT_EQ(arrival.size(), 1u);
  EXPECT_NEAR(arrival[0], 1.030, 1e-9);
}

TEST_F(FabricFixture, PayloadRoundTrip) {
  std::string got;
  fabric.bind(common::HostId(1), [&](const Message& m) {
    got = std::any_cast<std::string>(m.payload);
  });
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "t", 64,
                            std::any(std::string("hello"))});
  engine.run();
  EXPECT_EQ(got, "hello");
}

TEST_F(FabricFixture, DropsWhenDestinationDownAtDelivery) {
  int delivered = 0;
  fabric.bind(common::HostId(3), [&](const Message&) { ++delivered; });
  (void)fabric.send(Message{common::HostId(0), common::HostId(3), "t", 64, {}});
  // Kill the destination while the message is in flight.
  topology.set_host_up(common::HostId(3), false);
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fabric.stats().dropped_dst_down, 1u);
}

TEST_F(FabricFixture, RejectsWhenSourceDown) {
  topology.set_host_up(common::HostId(0), false);
  auto result = fabric.send(Message{common::HostId(0), common::HostId(1),
                                    "t", 64, {}});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, common::ErrorCode::kHostDown);
}

TEST_F(FabricFixture, UnboundDestinationCounted) {
  (void)fabric.send(Message{common::HostId(0), common::HostId(4), "t", 64, {}});
  engine.run();
  EXPECT_EQ(fabric.stats().dropped_unbound, 1u);
}

TEST_F(FabricFixture, MulticastReachesAll) {
  int count = 0;
  for (auto h : {1u, 2u, 3u}) {
    fabric.bind(common::HostId(h), [&](const Message&) { ++count; });
  }
  fabric.multicast(common::HostId(0),
                   {common::HostId(1), common::HostId(2), common::HostId(3)},
                   "mc", 64, {});
  engine.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(fabric.stats().sent_by_type.at("mc"), 3u);
}

TEST_F(FabricFixture, StatsAccumulateAndReset) {
  fabric.bind(common::HostId(1), [](const Message&) {});
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "a", 100, {}});
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "a", 100, {}});
  engine.run();
  EXPECT_EQ(fabric.stats().sent, 2u);
  EXPECT_EQ(fabric.stats().delivered, 2u);
  EXPECT_DOUBLE_EQ(fabric.stats().bytes_sent, 200.0);
  fabric.reset_stats();
  EXPECT_EQ(fabric.stats().sent, 0u);
}

TEST_F(FabricFixture, IntraSiteFasterThanInterSite) {
  double lan_arrival = -1, wan_arrival = -1;
  fabric.bind(common::HostId(1), [&](const Message&) { lan_arrival = engine.now(); });
  fabric.bind(common::HostId(3), [&](const Message&) { wan_arrival = engine.now(); });
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "t", 1e4, {}});
  (void)fabric.send(Message{common::HostId(0), common::HostId(3), "t", 1e4, {}});
  engine.run();
  EXPECT_LT(lan_arrival, wan_arrival);
}

TEST_F(FabricFixture, SharedSegmentsSerializeConcurrentTransfers) {
  // Two 1 MB transfers on the same LAN (1e6 Bps): without contention both
  // arrive after ~1s; with shared segments the second queues behind the
  // first and arrives after ~2s.
  std::vector<double> arrivals;
  fabric.bind(common::HostId(1), [&](const Message&) {
    arrivals.push_back(engine.now());
  });
  fabric.bind(common::HostId(2), [&](const Message&) {
    arrivals.push_back(engine.now());
  });

  fabric.set_shared_segments(true);
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "t", 1e6, {}});
  (void)fabric.send(Message{common::HostId(0), common::HostId(2), "t", 1e6, {}});
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 1.001, 1e-6);
  EXPECT_NEAR(arrivals[1], 2.001, 1e-6);
}

TEST_F(FabricFixture, SharedSegmentsIndependentAcrossSegments) {
  // A LAN transfer and a WAN transfer do not contend with each other.
  fabric.set_shared_segments(true);
  std::vector<double> arrivals(2, -1);
  fabric.bind(common::HostId(1), [&](const Message&) { arrivals[0] = engine.now(); });
  fabric.bind(common::HostId(3), [&](const Message&) { arrivals[1] = engine.now(); });
  (void)fabric.send(Message{common::HostId(0), common::HostId(1), "t", 1e6, {}});
  (void)fabric.send(Message{common::HostId(0), common::HostId(3), "t", 1e5, {}});
  engine.run();
  EXPECT_NEAR(arrivals[0], 1.001, 1e-6);   // LAN: 1e6/1e6 + 1ms
  EXPECT_NEAR(arrivals[1], 1.030, 1e-6);   // WAN: 1e5/1e5 + 30ms, unqueued
}

TEST_F(FabricFixture, SharedSegmentsLoopbackNeverContends) {
  fabric.set_shared_segments(true);
  double arrival = -1;
  fabric.bind(common::HostId(0), [&](const Message&) { arrival = engine.now(); });
  (void)fabric.send(Message{common::HostId(1), common::HostId(2), "t", 1e7, {}});
  (void)fabric.send(Message{common::HostId(0), common::HostId(0), "self", 64, {}});
  engine.run();
  EXPECT_NEAR(arrival, 0.0, 1e-6);  // loopback ignores the busy LAN
}

}  // namespace
}  // namespace vdce::net
