// Unit + property tests for the application flow graph: structure,
// validation, level computation, generators.
#include <gtest/gtest.h>

#include "afg/generate.hpp"
#include "afg/graph.hpp"
#include "afg/levels.hpp"
#include "common/rng.hpp"

namespace vdce::afg {
namespace {

TaskProperties props(int in, int out = 1) {
  TaskProperties p;
  p.inputs.resize(static_cast<std::size_t>(in));
  for (int i = 0; i < out; ++i) p.outputs.push_back(FileSpec{"", 1000, false});
  return p;
}

/// The Figure-1 diamond: lu, mm -> fwd -> bwd.
Afg diamond() {
  Afg g("diamond");
  auto lu = g.add_task("lu", "synthetic.w2000", props(0));
  auto mm = g.add_task("mm", "synthetic.w1500", props(0));
  auto fwd = g.add_task("fwd", "synthetic.w400", props(2));
  auto bwd = g.add_task("bwd", "synthetic.w400", props(1));
  EXPECT_TRUE(g.connect(*lu, 0, *fwd, 0).ok());
  EXPECT_TRUE(g.connect(*mm, 0, *fwd, 1).ok());
  EXPECT_TRUE(g.connect(*fwd, 0, *bwd, 0).ok());
  return g;
}

TEST(Afg, AddTaskAssignsSequentialIds) {
  Afg g("t");
  auto a = g.add_task("a", "x", props(0));
  auto b = g.add_task("b", "x", props(0));
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(g.task_count(), 2u);
}

TEST(Afg, DuplicateInstanceRejected) {
  Afg g("t");
  (void)g.add_task("a", "x", props(0));
  auto dup = g.add_task("a", "y", props(0));
  ASSERT_FALSE(dup.has_value());
  EXPECT_EQ(dup.error().code, common::ErrorCode::kAlreadyExists);
}

TEST(Afg, SequentialTaskCannotRequestNodes) {
  Afg g("t");
  TaskProperties p = props(0);
  p.mode = ComputationMode::kSequential;
  p.num_nodes = 4;
  EXPECT_FALSE(g.add_task("a", "x", p).has_value());
  p.mode = ComputationMode::kParallel;
  EXPECT_TRUE(g.add_task("b", "x", p).has_value());
}

TEST(Afg, ConnectValidatesPorts) {
  Afg g("t");
  auto a = g.add_task("a", "x", props(0, 1));
  auto b = g.add_task("b", "x", props(1));
  EXPECT_FALSE(g.connect(*a, 1, *b, 0).ok());   // no output port 1
  EXPECT_FALSE(g.connect(*a, 0, *b, 7).ok());   // no input port 7
  EXPECT_FALSE(g.connect(*a, 0, *a, 0).ok());   // self loop
  EXPECT_TRUE(g.connect(*a, 0, *b, 0).ok());
  EXPECT_FALSE(g.connect(*a, 0, *b, 0).ok());   // port already fed
}

TEST(Afg, ConnectMarksDataflow) {
  Afg g("t");
  auto a = g.add_task("a", "x", props(0));
  TaskProperties p = props(1);
  p.inputs[0] = FileSpec{"/data/file.dat", 500, false};
  auto b = g.add_task("b", "x", p);
  ASSERT_TRUE(g.connect(*a, 0, *b, 0).ok());
  EXPECT_TRUE(g.task(*b).props.inputs[0].dataflow);
  EXPECT_TRUE(g.task(*b).props.inputs[0].path.empty());
}

TEST(Afg, ParentsChildrenEntryExit) {
  Afg g = diamond();
  auto fwd = g.find_task("fwd").value();
  auto parents = g.parents(fwd);
  EXPECT_EQ(parents.size(), 2u);
  EXPECT_EQ(g.children(fwd).size(), 1u);
  auto entries = g.entry_tasks();
  EXPECT_EQ(entries.size(), 2u);
  auto exits = g.exit_tasks();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(g.task(exits[0]).instance_name, "bwd");
}

TEST(Afg, RequiresInputSemantics) {
  Afg g("t");
  auto bare = g.add_task("bare", "x", props(0));
  TaskProperties with_file = props(1);
  with_file.inputs[0] = FileSpec{"/f", 10, false};
  auto file_task = g.add_task("file", "x", with_file);
  EXPECT_FALSE(g.requires_input(*bare));
  EXPECT_TRUE(g.requires_input(*file_task));
}

TEST(Afg, EdgeBytesFromProducerPort) {
  Afg g("t");
  TaskProperties p = props(0);
  p.outputs[0].size_bytes = 12345;
  auto a = g.add_task("a", "x", p);
  auto b = g.add_task("b", "x", props(1));
  ASSERT_TRUE(g.connect(*a, 0, *b, 0).ok());
  EXPECT_DOUBLE_EQ(g.edge_bytes(g.edges()[0]), 12345.0);
}

TEST(Afg, TopologicalOrderRespectsEdges) {
  Afg g = diamond();
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i].value()] = i;
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[e.from.value()], position[e.to.value()]);
  }
}

TEST(Afg, ValidateDetectsEmptyGraph) {
  Afg g("empty");
  EXPECT_FALSE(g.validate().ok());
}

TEST(Afg, ValidatePassesForDag) { EXPECT_TRUE(diamond().validate().ok()); }

TEST(Afg, FindTask) {
  Afg g = diamond();
  EXPECT_TRUE(g.find_task("lu").has_value());
  EXPECT_FALSE(g.find_task("nope").has_value());
}

// ---- levels --------------------------------------------------------------------

double synth_cost(const TaskNode& node) {
  // "synthetic.w<mflop>" at 100 MFLOPS base.
  auto pos = node.task_name.rfind('w');
  return std::stod(node.task_name.substr(pos + 1)) / 100.0;
}

TEST(Levels, PaperDefinitionOnDiamond) {
  Afg g = diamond();
  auto levels = compute_levels(g, synth_cost);
  ASSERT_TRUE(levels.has_value());
  // bwd: 4; fwd: 4 + 4 = 8; lu: 20 + 8 = 28; mm: 15 + 8 = 23.
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("bwd").value()), 4.0);
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("fwd").value()), 8.0);
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("lu").value()), 28.0);
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("mm").value()), 23.0);
}

TEST(Levels, PriorityOrderDescends) {
  Afg g = diamond();
  auto levels = compute_levels(g, synth_cost);
  auto order = levels->by_priority();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(g.task(order[0]).instance_name, "lu");
  EXPECT_EQ(g.task(order[1]).instance_name, "mm");
  EXPECT_EQ(g.task(order[2]).instance_name, "fwd");
  EXPECT_EQ(g.task(order[3]).instance_name, "bwd");
}

TEST(Levels, CommVariantAddsEdgeCosts) {
  Afg g = diamond();
  auto with_comm = compute_levels_with_comm(g, synth_cost,
                                            [](const Edge&) { return 10.0; });
  ASSERT_TRUE(with_comm.has_value());
  // bwd: 4; fwd: 4 + 10 + 4 = 18; lu: 20 + 10 + 18 = 48.
  EXPECT_DOUBLE_EQ(with_comm->of(g.find_task("fwd").value()), 18.0);
  EXPECT_DOUBLE_EQ(with_comm->of(g.find_task("lu").value()), 48.0);
}

TEST(Levels, ChainLevelsAccumulate) {
  Afg g = make_chain(5, 100, 1000);
  auto levels = compute_levels(g, synth_cost);
  ASSERT_TRUE(levels.has_value());
  // Each stage costs 1s; head of chain has level 5.
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("s0").value()), 5.0);
  EXPECT_DOUBLE_EQ(levels->of(g.find_task("s4").value()), 1.0);
}

// ---- generators (property-style sweeps) ------------------------------------------

struct GeneratorCase {
  std::size_t tasks;
  std::size_t width;
  double density;
  std::uint64_t seed;
};

class LayeredDagProperty : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(LayeredDagProperty, AlwaysValidDagWithExpectedSize) {
  const auto& param = GetParam();
  common::Rng rng(param.seed);
  LayeredDagSpec spec;
  spec.tasks = param.tasks;
  spec.width = param.width;
  spec.edge_density = param.density;
  Afg g = make_layered_dag(spec, rng);
  EXPECT_EQ(g.task_count(), param.tasks);
  EXPECT_TRUE(g.validate().ok());
  // Every non-first-layer task has at least one parent: at most `width`
  // entry tasks exist.
  EXPECT_LE(g.entry_tasks().size(), param.width);
  // Levels computable and positive.
  auto levels = compute_levels(g, synth_cost);
  ASSERT_TRUE(levels.has_value());
  for (double l : levels->level) EXPECT_GT(l, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayeredDagProperty,
    ::testing::Values(GeneratorCase{1, 1, 0.5, 1}, GeneratorCase{10, 3, 0.0, 2},
                      GeneratorCase{50, 5, 0.5, 3},
                      GeneratorCase{100, 8, 1.0, 4},
                      GeneratorCase{200, 4, 0.3, 5},
                      GeneratorCase{400, 16, 0.7, 6}));

TEST(Generators, ForkJoinShape) {
  Afg g = make_fork_join(4, 2, 100, 1000);
  EXPECT_EQ(g.task_count(), 1 + 4 * 2 + 1);
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(g.parents(g.find_task("join").value()).size(), 4u);
}

TEST(Generators, IndependentBagHasNoEdges) {
  Afg g = make_independent(10, 100);
  EXPECT_EQ(g.task_count(), 10u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.entry_tasks().size(), 10u);
}

TEST(Generators, ReductionTreeShape) {
  Afg g = make_reduction_tree(8, 100, 1000);
  EXPECT_EQ(g.task_count(), 8u + 4 + 2 + 1);
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks().size(), 8u);
}

TEST(Generators, ReductionTreeOddLeaves) {
  Afg g = make_reduction_tree(5, 100, 1000);
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Generators, LinearSolverShapeMatchesFigure1) {
  Afg g = make_linear_solver_shape(1e5);
  EXPECT_EQ(g.task_count(), 4u);
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.entry_tasks().size(), 2u);
  auto fwd = g.find_task("Forward_Substitution").value();
  EXPECT_EQ(g.parents(fwd).size(), 2u);
}

TEST(Generators, Deterministic) {
  common::Rng a(42), b(42);
  LayeredDagSpec spec;
  spec.tasks = 30;
  Afg g1 = make_layered_dag(spec, a);
  Afg g2 = make_layered_dag(spec, b);
  ASSERT_EQ(g1.task_count(), g2.task_count());
  ASSERT_EQ(g1.edges().size(), g2.edges().size());
  for (std::size_t i = 0; i < g1.edges().size(); ++i) {
    EXPECT_EQ(g1.edges()[i], g2.edges()[i]);
  }
}

}  // namespace
}  // namespace vdce::afg
