// vdce::chaos — deterministic fault injection and the hardened recovery
// paths it exercises: plan round-trips, arm-time validation, byte-identical
// fault/recovery traces across identical-seed runs, and applications that
// complete through crashes, partitions, message loss, and stale monitors.
#include <gtest/gtest.h>

#include <string>

#include "afg/generate.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/strings.hpp"
#include "editor/builder.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions chaos_options(chaos::FaultPlan plan) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.trace.enabled = true;
  options.metrics.enabled = true;
  options.faults = std::move(plan);
  return options;
}

/// First host of `site` that is not its server machine (probes to it land
/// in an agent with no Site Manager, so unknown types are ignored).
common::HostId non_server_host(VdceEnvironment& env, common::SiteId site) {
  const net::Site& s = env.topology().site(site);
  for (common::HostId h : s.hosts) {
    if (h != s.server) return h;
  }
  return s.hosts.front();
}

Session login(VdceEnvironment& env) {
  EXPECT_TRUE(env.try_add_user("u", "p").ok());
  return env.login(common::SiteId(0), "u", "p").value();
}

/// The determinism artifact: every chaos.* / recovery.* trace instant,
/// rendered in recording order.
std::string fault_recovery_trace(VdceEnvironment& env) {
  std::string out;
  for (const obs::TraceEvent& event : env.trace().events()) {
    if (event.category != "chaos" && event.category != "recovery") continue;
    out += event.name;
    out += " t=";
    out += common::format_double(event.start, 4);
    for (const obs::TraceArg& a : event.args) {
      out += ' ';
      out += a.key;
      out += '=';
      out += a.value;
    }
    out += '\n';
  }
  return out;
}

// --- FaultPlan: builder, text format, validation ---------------------------

TEST(FaultPlan, WriteParseRoundTrip) {
  chaos::FaultPlan plan;
  plan.name("campus-meltdown")
      .seed(42)
      .crash(common::HostId(3), 5.0, 10.0)
      .crash("lynx2.site1.vdce.edu", 8.0)
      .degrade(0, 1, 10.0, 5.0, 4.0, 0.25)
      .partition(0, 1, 20.0, 4.0)
      .loss(0.25, 2.0, 6.0, "dm.", 0)
      .slow(common::HostId(4), 3.0, 5.0, 2.0)
      .stale_host(common::HostId(4), 3.0, 5.0)
      .stale_site(1, 6.0, 8.0);
  ASSERT_TRUE(plan.validate().ok());

  std::string text = plan.write();
  auto parsed = chaos::FaultPlan::parse(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->name(), "campus-meltdown");
  EXPECT_EQ(parsed->seed(), 42u);
  EXPECT_EQ(parsed->size(), plan.size());
  EXPECT_EQ(parsed->write(), text);  // canonical form is a fixed point
}

TEST(FaultPlan, ParseErrorNamesTheLine) {
  auto plan = chaos::FaultPlan::parse("faultplan \"p\"\nexplode host 3 at 1.0\n");
  ASSERT_FALSE(plan.has_value());
  EXPECT_NE(plan.error().message.find("line 2"), std::string::npos)
      << plan.error().message;
}

TEST(FaultPlan, BuilderValidatesEagerly) {
  chaos::FaultPlan plan;
  plan.loss(1.7, 1.0, 5.0);  // rate outside [0, 1]
  common::Status status = plan.validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::ErrorCode::kInvalidArgument);
}

// --- arming against an environment -----------------------------------------

TEST(Chaos, BringUpRejectsPlanWithUnknownHost) {
  chaos::FaultPlan plan;
  plan.crash("no-such-machine.nowhere.edu", 1.0);
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  common::Status status = env.try_bring_up();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::ErrorCode::kNotFound);
  EXPECT_NE(status.error().message.find("no-such-machine.nowhere.edu"),
            std::string::npos)
      << status.error().message;
  EXPECT_EQ(env.chaos(), nullptr);
}

TEST(Chaos, TryBringUpRejectsRepeatedCall) {
  VdceEnvironment env(make_campus_pair(13));
  ASSERT_TRUE(env.try_bring_up().ok());
  common::Status again = env.try_bring_up();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(Chaos, RunApplicationNamesTheUnknownTask) {
  VdceEnvironment env(make_campus_pair(13));
  ASSERT_TRUE(env.try_bring_up().ok());
  Session session = login(env);

  editor::AppBuilder builder("typo");
  auto ok = builder.task("Step1", "matrix.lu_decomposition").output_data(1e4);
  auto bad = builder.task("Step2", "matrix.does_not_exist");
  ASSERT_TRUE(builder.link(ok, bad).has_value());
  afg::Afg graph = builder.build().value();

  auto report = env.run_application(graph, session);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kNotFound);
  EXPECT_NE(report.error().message.find("matrix.does_not_exist"),
            std::string::npos)
      << report.error().message;
  EXPECT_NE(report.error().message.find("Step2"), std::string::npos)
      << report.error().message;
}

// --- fault mechanics (fabric-level, no application needed) ------------------

TEST(Chaos, PartitionDropsCrossSiteTrafficThenHeals) {
  chaos::FaultPlan plan;
  plan.name("split").partition(0, 1, 1.0, 2.0);
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  common::HostId a = non_server_host(env, common::SiteId(0));
  common::HostId b = non_server_host(env, common::SiteId(1));

  // Unknown "x.*" probes are ignored by the receiving agent; we watch the
  // fabric's injected-drop counter instead of delivery.
  auto probe = [&] {
    (void)env.fabric().send({a, b, "x.probe", 64, {}});
  };
  env.engine().schedule(0.5, probe);   // before the window
  env.engine().schedule(2.0, probe);   // inside: dropped
  env.engine().schedule(4.0, probe);   // healed
  env.run_for(6.0);

  EXPECT_EQ(env.fabric().stats().dropped_injected, 1u);
  EXPECT_EQ(env.chaos()->messages_dropped(), 1u);
  std::string log = env.chaos()->log_text();
  EXPECT_NE(log.find("partition"), std::string::npos) << log;
  EXPECT_NE(log.find("healed"), std::string::npos) << log;
}

TEST(Chaos, LossFiltersByTypePrefix) {
  chaos::FaultPlan plan;
  plan.loss(1.0, 1.0, 2.0, "x.");  // certain drop, but only "x.*" messages
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  common::HostId a = non_server_host(env, common::SiteId(0));
  common::HostId b = non_server_host(env, common::SiteId(1));

  env.engine().schedule(1.5, [&] {
    (void)env.fabric().send({a, b, "x.probe", 64, {}});
    (void)env.fabric().send({a, b, "y.probe", 64, {}});
  });
  env.run_for(4.0);

  // Only the "x.*" message matched the filter (and rate 1.0 made the drop
  // certain).
  EXPECT_EQ(env.fabric().stats().dropped_injected, 1u);
  EXPECT_EQ(env.chaos()->messages_dropped(), 1u);
}

TEST(Chaos, StaleWindowMutesMonitorSamples) {
  chaos::FaultPlan plan;
  plan.stale_site(0, 1.0, 5.0);
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  env.run_for(10.0);
  EXPECT_GT(env.metrics().counter("monitor.samples_muted").value(), 0u);
  // The window ended: fresh samples flow again, nobody was marked down.
  for (const net::Host& h : env.topology().hosts()) {
    auto rec = env.repo(h.site).resources().find(h.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->up);
  }
}

// --- recovery through injected faults --------------------------------------

/// A two-stage pinned chain on named machines, so the crash victim is known
/// before the plan is armed.
afg::Afg make_pinned_chain(const std::string& host_a,
                           const std::string& host_b) {
  editor::AppBuilder builder("pinned-chain");
  auto s0 = builder.task("s0", "synthetic.w2000")
                .prefer_machine(host_a)
                .output_data(1e5);
  auto s1 = builder.task("s1", "synthetic.w2000").prefer_machine(host_b);
  EXPECT_TRUE(builder.link(s0, s1).has_value());
  return builder.build().value();
}

TEST(Chaos, CrashMidTaskRecoversAndRecordsTheOutcome) {
  net::Topology topology = make_campus_pair(13);
  const net::Site& site0 = topology.site(common::SiteId(0));
  std::string host_a = topology.host(site0.hosts[1]).spec.name;
  std::string host_b = topology.host(site0.hosts[2]).spec.name;

  chaos::FaultPlan plan;
  plan.name("mid-task-crash").crash(host_a, 1.5);  // s0 is running at 1.5
  VdceEnvironment env(std::move(topology), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  Session session = login(env);

  afg::Afg graph = make_pinned_chain(host_a, host_b);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);

  // The per-fault recovery outcome is in the report: the crashed host's
  // task moved, with the detection time and the new machine recorded.
  ASSERT_FALSE(report->recoveries.empty());
  bool found = false;
  for (const runtime::RecoveryEvent& r : report->recoveries) {
    if (r.reason != "host_down") continue;
    found = true;
    EXPECT_EQ(env.topology().host(r.from_host).spec.name, host_a);
    EXPECT_NE(r.to_host, r.from_host);
    EXPECT_GE(r.detected_at, 1.5);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(env.chaos()->log_text().find("crash"), std::string::npos);
}

TEST(Chaos, SetupMessageLossRecoversViaRetries) {
  // 60% of dm.* traffic vanishes during channel setup; the retry-with-
  // backoff path and the coordinator's stall sweep must still complete the
  // run.
  chaos::FaultPlan plan;
  plan.name("lossy-setup").seed(7).loss(0.6, 0.0, 4.0, "dm.");
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  Session session = login(env);

  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GT(env.chaos()->messages_dropped(), 0u);
}

TEST(Chaos, DegradedLinksSlowButDoNotBreakExecution) {
  chaos::FaultPlan plan;
  plan.degrade(0, 1, 0.0, 1e6, 8.0, 0.1);  // WAN 8x latency, 10% bandwidth
  VdceEnvironment env(make_campus_pair(13), chaos_options(std::move(plan)));
  ASSERT_TRUE(env.try_bring_up().ok());
  Session session = login(env);

  afg::Afg graph = afg::make_fork_join(3, 2, 500, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success) << report->failure_reason;
}

// --- the acceptance criterion: byte-identical traces ------------------------

struct TraceArtifacts {
  std::string injector_log;
  std::string trace_text;
  std::string report_text;
};

TraceArtifacts run_chaotic_workload(std::uint64_t seed) {
  chaos::FaultPlan plan;
  plan.name("determinism")
      .seed(seed)
      .crash(common::HostId(2), 2.0, 6.0)
      .loss(0.3, 0.5, 5.0, "dm.")
      .degrade(0, 1, 1.0, 10.0, 3.0, 0.5)
      .stale_site(1, 2.0, 4.0)
      .slow(common::HostId(4), 1.0, 6.0, 2.0);
  EnvironmentOptions options = chaos_options(std::move(plan));
  options.runtime.seed = 99;
  VdceEnvironment env(make_campus_pair(13), options);
  EXPECT_TRUE(env.try_bring_up().ok());
  Session session = login(env);

  afg::Afg graph = afg::make_fork_join(3, 2, 800, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  EXPECT_TRUE(report.has_value());
  env.run_for(5.0);

  TraceArtifacts artifacts;
  artifacts.injector_log = env.chaos()->log_text();
  artifacts.trace_text = fault_recovery_trace(env);
  if (report.has_value()) artifacts.report_text = report->describe(graph);
  return artifacts;
}

TEST(Chaos, IdenticalSeedsProduceByteIdenticalFaultAndRecoveryTraces) {
  TraceArtifacts first = run_chaotic_workload(21);
  TraceArtifacts second = run_chaotic_workload(21);
  ASSERT_FALSE(first.injector_log.empty());
  EXPECT_EQ(first.injector_log, second.injector_log);
  EXPECT_EQ(first.trace_text, second.trace_text);
  EXPECT_EQ(first.report_text, second.report_text);
}

TEST(Chaos, DifferentSeedsChangeTheDropPattern) {
  // Same plan shape, different seed: the loss windows draw differently.
  // (The *schedule* of planned faults is seed-independent; the stochastic
  // part is which messages die.)
  TraceArtifacts first = run_chaotic_workload(21);
  TraceArtifacts second = run_chaotic_workload(22);
  EXPECT_NE(first.trace_text, second.trace_text);
}

}  // namespace
}  // namespace vdce
