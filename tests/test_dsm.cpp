// Tests for the distributed-shared-memory service (paper §5 future work):
// MSI protocol state transitions, sequential consistency under contention,
// and the distributed lock manager.
#include <gtest/gtest.h>

#include <algorithm>

#include "dsm/dsm.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce::dsm {
namespace {

struct DsmFixture : ::testing::Test {
  DsmFixture() : env(make_campus_pair()) {
    env.bring_up();
    dsm = &env.enable_dsm();
  }

  /// Drive simulated time until all issued operations have completed.
  void settle() { env.run_for(5.0); }

  common::HostId host(std::size_t site, std::size_t index) {
    return env.topology().site(common::SiteId(static_cast<std::uint32_t>(site)))
        .hosts[index];
  }

  VdceEnvironment env;
  DsmRuntime* dsm = nullptr;
};

TEST_F(DsmFixture, ReadReturnsInitialValue) {
  dsm->define_object("x", tasklib::Value(41), 256);
  auto client = dsm->client(host(0, 1));
  int seen = 0;
  client.read("x", [&](tasklib::Value v) { seen = std::any_cast<int>(v); });
  settle();
  EXPECT_EQ(seen, 41);
  EXPECT_EQ(client.state("x"), CacheState::kShared);
}

TEST_F(DsmFixture, SecondReadIsALocalHit) {
  dsm->define_object("x", tasklib::Value(1), 256);
  auto client = dsm->client(host(0, 1));
  client.read("x", [](tasklib::Value) {});
  settle();
  dsm->reset_stats();
  int seen = 0;
  client.read("x", [&](tasklib::Value v) { seen = std::any_cast<int>(v); });
  EXPECT_EQ(seen, 1);  // synchronous hit
  EXPECT_EQ(dsm->stats().read_hits, 1u);
  EXPECT_EQ(dsm->stats().read_misses, 0u);
}

TEST_F(DsmFixture, WriteGrantsExclusiveOwnership) {
  dsm->define_object("x", tasklib::Value(0), 256);
  auto writer = dsm->client(host(0, 2));
  bool done = false;
  writer.write("x", tasklib::Value(7), [&] { done = true; });
  settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(writer.state("x"), CacheState::kModified);
  EXPECT_EQ(std::any_cast<int>(dsm->home_value("x").value()), 7);
}

TEST_F(DsmFixture, WriteInvalidatesReaders) {
  dsm->define_object("x", tasklib::Value(1), 256);
  auto reader1 = dsm->client(host(0, 1));
  auto reader2 = dsm->client(host(1, 1));
  reader1.read("x", [](tasklib::Value) {});
  reader2.read("x", [](tasklib::Value) {});
  settle();
  ASSERT_EQ(reader1.state("x"), CacheState::kShared);
  ASSERT_EQ(reader2.state("x"), CacheState::kShared);

  auto writer = dsm->client(host(0, 3));
  writer.write("x", tasklib::Value(2), [] {});
  settle();
  EXPECT_EQ(reader1.state("x"), CacheState::kInvalid);
  EXPECT_EQ(reader2.state("x"), CacheState::kInvalid);
  EXPECT_GE(dsm->stats().invalidations_sent, 2u);

  // A re-read observes the new value.
  int seen = 0;
  reader1.read("x", [&](tasklib::Value v) { seen = std::any_cast<int>(v); });
  settle();
  EXPECT_EQ(seen, 2);
}

TEST_F(DsmFixture, ReadRecallsAndDowngradesOwner) {
  dsm->define_object("x", tasklib::Value(0), 256);
  auto writer = dsm->client(host(0, 1));
  writer.write("x", tasklib::Value(9), [] {});
  settle();
  ASSERT_EQ(writer.state("x"), CacheState::kModified);

  auto reader = dsm->client(host(1, 2));
  int seen = 0;
  reader.read("x", [&](tasklib::Value v) { seen = std::any_cast<int>(v); });
  settle();
  EXPECT_EQ(seen, 9);  // the modified copy, not the stale home value
  EXPECT_EQ(writer.state("x"), CacheState::kShared);  // downgraded
  EXPECT_EQ(reader.state("x"), CacheState::kShared);
  EXPECT_GE(dsm->stats().owner_recalls, 1u);
}

TEST_F(DsmFixture, OwnershipMigrates) {
  dsm->define_object("x", tasklib::Value(0), 256);
  auto a = dsm->client(host(0, 1));
  auto b = dsm->client(host(1, 1));
  a.write("x", tasklib::Value(1), [] {});
  settle();
  b.write("x", tasklib::Value(2), [] {});
  settle();
  EXPECT_EQ(a.state("x"), CacheState::kInvalid);
  EXPECT_EQ(b.state("x"), CacheState::kModified);
  EXPECT_EQ(std::any_cast<int>(dsm->home_value("x").value()), 2);
}

TEST_F(DsmFixture, WriteHitStaysLocal) {
  dsm->define_object("x", tasklib::Value(0), 256);
  auto writer = dsm->client(host(0, 1));
  writer.write("x", tasklib::Value(1), [] {});
  settle();
  dsm->reset_stats();
  bool done = false;
  writer.write("x", tasklib::Value(2), [&] { done = true; });
  EXPECT_TRUE(done);  // synchronous: already Modified
  EXPECT_EQ(dsm->stats().write_hits, 1u);
  EXPECT_EQ(dsm->stats().write_misses, 0u);
  EXPECT_EQ(std::any_cast<int>(dsm->home_value("x").value()), 2);
}

TEST_F(DsmFixture, LockIsMutualExclusion) {
  // The queue is FIFO in *arrival order at the home* (a client co-located
  // with the home wins races against remote issuers — correct distributed
  // behaviour), so we assert mutual exclusion, not global issue order.
  std::vector<int> order;
  std::vector<DsmClient> clients{dsm->client(host(0, 1)),
                                 dsm->client(host(0, 2)),
                                 dsm->client(host(1, 1))};
  clients[0].acquire("m", [&] { order.push_back(1); });
  clients[1].acquire("m", [&] { order.push_back(2); });
  clients[2].acquire("m", [&] { order.push_back(3); });
  settle();
  ASSERT_EQ(order.size(), 1u);  // exactly one holder at a time
  clients[static_cast<std::size_t>(order[0] - 1)].release("m", [] {});
  settle();
  ASSERT_EQ(order.size(), 2u);
  clients[static_cast<std::size_t>(order[1] - 1)].release("m", [] {});
  settle();
  ASSERT_EQ(order.size(), 3u);
  // Every client eventually acquired, each exactly once.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3}));
  clients[static_cast<std::size_t>(order[2] - 1)].release("m", [] {});
  settle();
}

TEST_F(DsmFixture, LockProtectedCounterFromManyHosts) {
  // The canonical shared-memory correctness test: N hosts each increment a
  // shared counter K times under a lock; the final value must be N*K.
  dsm->define_object("counter", tasklib::Value(0), 64);
  constexpr int kHosts = 6;
  constexpr int kIncrements = 5;

  // Each "thread" is a self-rescheduling continuation chain.
  struct Worker {
    DsmClient client;
    int remaining = kIncrements;
    void step() {
      if (remaining-- == 0) return;
      client.acquire("counter_lock", [this] {
        client.read("counter", [this](tasklib::Value v) {
          int value = std::any_cast<int>(v);
          client.write("counter", tasklib::Value(value + 1), [this] {
            client.release("counter_lock", [this] { step(); });
          });
        });
      });
    }
  };

  std::vector<Worker> workers;
  workers.reserve(kHosts);
  for (int i = 0; i < kHosts; ++i) {
    workers.push_back(Worker{dsm->client(host(i % 2 == 0 ? 0 : 1,
                                              static_cast<std::size_t>(i / 2))),
                             kIncrements});
  }
  for (Worker& w : workers) w.step();
  env.run_for(120.0);

  EXPECT_EQ(std::any_cast<int>(dsm->home_value("counter").value()),
            kHosts * kIncrements);
}

TEST_F(DsmFixture, BarrierReleasesAllPartiesTogether) {
  std::vector<double> release_times;
  std::vector<DsmClient> clients{dsm->client(host(0, 1)),
                                 dsm->client(host(0, 3)),
                                 dsm->client(host(1, 2))};
  // Stagger arrivals across simulated time.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    env.engine().schedule(static_cast<double>(i) * 2.0, [this, i, &clients,
                                                         &release_times] {
      clients[i].barrier("sync", 3,
                         [this, &release_times] {
                           release_times.push_back(env.now());
                         });
    });
  }
  env.run_for(3.0);
  EXPECT_TRUE(release_times.empty());  // only two arrivals so far
  env.run_for(10.0);
  ASSERT_EQ(release_times.size(), 3u);
  // All released by the same generation-completing arrival (within one
  // message flight of each other).
  EXPECT_LT(release_times.back() - release_times.front(), 0.2);
  EXPECT_GE(release_times.front(), 4.0);  // not before the last arrival
}

TEST_F(DsmFixture, BarrierIsReusableAcrossGenerations) {
  int rounds_done = 0;
  struct Party {
    DsmClient client;
    int remaining;
    int* rounds_done;
    void go() {
      if (remaining-- == 0) return;
      client.barrier("loop", 2, [this] {
        ++*rounds_done;
        go();
      });
    }
  };
  std::vector<Party> parties;
  parties.reserve(2);
  parties.push_back(Party{dsm->client(host(0, 1)), 3, &rounds_done});
  parties.push_back(Party{dsm->client(host(1, 1)), 3, &rounds_done});
  for (Party& p : parties) p.go();
  env.run_for(30.0);
  EXPECT_EQ(rounds_done, 6);  // 3 generations x 2 parties
}

TEST_F(DsmFixture, HomePlacementIsDeterministic) {
  EXPECT_EQ(dsm->home_of("abc"), dsm->home_of("abc"));
}

TEST_F(DsmFixture, HomeValueUnknownObject) {
  EXPECT_FALSE(dsm->home_value("ghost").has_value());
}

TEST_F(DsmFixture, RedefineResetsCaches) {
  dsm->define_object("x", tasklib::Value(1), 256);
  auto client = dsm->client(host(0, 1));
  client.read("x", [](tasklib::Value) {});
  settle();
  ASSERT_EQ(client.state("x"), CacheState::kShared);
  dsm->define_object("x", tasklib::Value(10), 256);
  EXPECT_EQ(client.state("x"), CacheState::kInvalid);
  int seen = 0;
  client.read("x", [&](tasklib::Value v) { seen = std::any_cast<int>(v); });
  settle();
  EXPECT_EQ(seen, 10);
}

TEST_F(DsmFixture, ConcurrentWritersSerializeAtHome) {
  dsm->define_object("x", tasklib::Value(0), 256);
  // Two writers race without a lock: both complete, final value is one of
  // theirs (home serialization ensures no corruption), and exactly one host
  // ends with the M copy.
  auto a = dsm->client(host(0, 1));
  auto b = dsm->client(host(1, 1));
  int completions = 0;
  a.write("x", tasklib::Value(100), [&] { ++completions; });
  b.write("x", tasklib::Value(200), [&] { ++completions; });
  settle();
  EXPECT_EQ(completions, 2);
  int final_value = std::any_cast<int>(dsm->home_value("x").value());
  EXPECT_TRUE(final_value == 100 || final_value == 200);
  int modified_copies = 0;
  if (a.state("x") == CacheState::kModified) ++modified_copies;
  if (b.state("x") == CacheState::kModified) ++modified_copies;
  EXPECT_EQ(modified_copies, 1);
}

}  // namespace
}  // namespace vdce::dsm
