// Cross-cutting property tests: QoS deadlines and admission control,
// whole-system determinism, randomized failure-injection survival, DSL
// round-trip stability over generated graphs, and scheduler invariants over
// the full vdce::scale corpus of generated (topology, AFG) pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "afg/generate.hpp"
#include "db/site_repository.hpp"
#include "econ/econ.hpp"
#include "editor/dsl.hpp"
#include "predict/model.hpp"
#include "scale/generate.hpp"
#include "sched/host_selection.hpp"
#include "sched/site_scheduler.hpp"
#include "sched/strategy.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions fast_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 1.0;
  options.runtime.progress_period = 2.0;
  return options;
}

Session login(VdceEnvironment& env) {
  env.add_user("u", "p");
  return env.login(common::SiteId(0), "u", "p").value();
}

// ---- QoS -----------------------------------------------------------------------

TEST(Qos, GenerousDeadlineIsMet) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 1e6;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->deadline_met());
  EXPECT_DOUBLE_EQ(report->deadline, 1e6);
}

TEST(Qos, TightDeadlineReportedAsMissed) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 5000, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 0.001;  // impossible
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);  // still runs to completion
  EXPECT_FALSE(report->deadline_met());
}

TEST(Qos, AdmissionControlRejectsUpFront) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 5000, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 0.001;
  run.enforce_admission = true;
  auto report = env.run_application(graph, session, run);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kNoFeasibleResource);
  EXPECT_NE(report.error().message.find("admission rejected"),
            std::string::npos);
}

TEST(Qos, NoDeadlineAlwaysMet) {
  runtime::ExecutionReport report;
  report.exec_started = 0;
  report.completed = 100;
  EXPECT_TRUE(report.deadline_met());
}

// ---- determinism -----------------------------------------------------------------

TEST(Determinism, IdenticalEnvironmentsProduceIdenticalReports) {
  auto run_once = [] {
    EnvironmentOptions options;
    options.background_load = true;  // include the stochastic pieces
    options.runtime.exec_noise_cv = 0.1;
    VdceEnvironment env(make_campus_pair(9), options);
    env.bring_up();
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();
    env.run_for(10.0);
    common::Rng rng(4);
    afg::LayeredDagSpec spec;
    spec.tasks = 20;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    RunOptions run;
    run.real_kernels = false;
    auto report = env.run_application(graph, session, run);
    EXPECT_TRUE(report.has_value());
    return std::make_pair(report->makespan(), report->outcomes);
  };
  auto [makespan1, outcomes1] = run_once();
  auto [makespan2, outcomes2] = run_once();
  EXPECT_DOUBLE_EQ(makespan1, makespan2);
  ASSERT_EQ(outcomes1.size(), outcomes2.size());
  for (std::size_t i = 0; i < outcomes1.size(); ++i) {
    EXPECT_EQ(outcomes1[i].host, outcomes2[i].host);
    EXPECT_DOUBLE_EQ(outcomes1[i].started, outcomes2[i].started);
    EXPECT_DOUBLE_EQ(outcomes1[i].finished, outcomes2[i].finished);
  }
}

// ---- randomized failure injection ---------------------------------------------------

class FailureInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureInjection, ApplicationSurvivesRandomHostDeaths) {
  auto options = fast_options();
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  VdceEnvironment env(make_campus_pair(GetParam()), options);
  env.bring_up();
  auto session = login(env);

  common::Rng rng(1000 + GetParam());
  afg::LayeredDagSpec spec;
  spec.tasks = 15;
  spec.width = 4;
  spec.min_mflop = 2000;
  spec.max_mflop = 6000;
  afg::Afg graph = afg::make_layered_dag(spec, rng);

  // Kill two random hosts at random times, sparing the coordinator's server
  // machine (coordinator fail-over is documented as out of scope).
  std::set<common::HostId> protected_hosts;
  for (const net::Site& s : env.topology().sites()) {
    protected_hosts.insert(s.server);
  }
  int killed = 0;
  while (killed < 2) {
    const net::Host& h = env.topology().hosts()[rng.pick_index(
        env.topology().host_count())];
    if (protected_hosts.contains(h.id)) continue;
    protected_hosts.insert(h.id);  // don't double-kill
    double when = rng.uniform(2.0, 40.0);
    env.engine().schedule(when, [&env, id = h.id] {
      env.topology().set_host_up(id, false);
    });
    ++killed;
  }

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success) << report->failure_reason;
  // Every outcome ran on a machine that was up at its completion or was
  // re-executed elsewhere afterwards; at minimum, no outcome host may be a
  // host that died before the task's start.
  EXPECT_EQ(report->outcomes.size(), graph.task_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjection,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- DSL round-trip over generated graphs ---------------------------------------------

class DslRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DslRoundTrip, WriteParseWriteIsStable) {
  common::Rng rng(GetParam());
  afg::LayeredDagSpec spec;
  spec.tasks = 12 + GetParam() * 3;
  spec.width = 4;
  spec.parallel_task_fraction = 0.3;
  afg::Afg graph = afg::make_layered_dag(spec, rng);

  std::string once = editor::write_afg(graph);
  auto parsed = editor::parse_afg(once);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  std::string twice = editor::write_afg(*parsed);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(parsed->task_count(), graph.task_count());
  EXPECT_EQ(parsed->edges().size(), graph.edges().size());
  EXPECT_TRUE(parsed->validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---- scheduler invariants over the generated scale corpus ----------------------------
//
// 200+ (topology, AFG) pairs from vdce::scale::make_corpus, each scheduled
// with options cycled by case index.  Four invariants hold for every case:
//   1. every task is mapped exactly once, to existing, up hosts of the
//      assignment's site with enough memory (and `num_nodes` of them for
//      parallel tasks);
//   2. start times respect dependencies including the transfer time from
//      each parent's primary host;
//   3. no host runs two tasks concurrently;
//   4. the schedule length equals the last task's completion.

/// A scale-generated topology with per-site repositories and a wired
/// scheduler context (every site bids: k_nearest = sites - 1).
struct CorpusDeployment {
  explicit CorpusDeployment(const scale::GridSpec& spec)
      : topology(scale::make_grid(spec)) {
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = topology.site_count() - 1;
  }

  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  sched::SchedulerContext context;
};

/// Cycle scheduler options deterministically by case index so the corpus
/// covers both objectives and all three priority modes.
sched::SchedulingPolicy corpus_options(std::size_t index) {
  sched::SchedulingPolicy options;
  options.objective = index % 2 == 0 ? sched::SiteObjective::kAvailabilityAware
                                     : sched::SiteObjective::kPaperObjective;
  switch ((index / 2) % 3) {
    case 0: options.priority = sched::PriorityMode::kPaperLevels; break;
    case 1: options.priority = sched::PriorityMode::kCommLevels; break;
    default: options.priority = sched::PriorityMode::kFifo; break;
  }
  return options;
}

void check_schedule_invariants(const afg::Afg& graph,
                               const net::Topology& topology,
                               const sched::ResourceAllocationTable& table,
                               std::size_t index) {
  SCOPED_TRACE("corpus case " + std::to_string(index));
  constexpr double kEps = 1e-9;

  // 1 — complete, constraint-satisfying mapping.
  ASSERT_EQ(table.assignments.size(), graph.task_count());
  std::set<std::uint32_t> seen;
  for (const sched::Assignment& a : table.assignments) {
    EXPECT_TRUE(seen.insert(a.task.value()).second)
        << "task " << a.task.value() << " mapped twice";
    const afg::TaskNode& node = graph.task(a.task);
    const std::size_t need =
        node.props.mode == afg::ComputationMode::kParallel
            ? static_cast<std::size_t>(node.props.num_nodes)
            : std::size_t{1};
    ASSERT_EQ(a.hosts.size(), need) << "task " << a.task.value();
    for (common::HostId h : a.hosts) {
      ASSERT_LT(h.value(), topology.host_count());
      const net::Host& host = topology.host(h);
      EXPECT_EQ(host.site, a.site) << "task " << a.task.value();
      EXPECT_TRUE(host.state.up);
      // Generated tasks are synthetic: 8 MB requirement (support.cpp), and
      // the memory ladder starts at 64 MB — but assert it, don't assume it.
      EXPECT_GE(host.spec.memory_mb, 8.0);
    }
    EXPECT_GE(a.est_start, -kEps);
    EXPECT_GE(a.est_finish, a.est_start - kEps);
  }
  EXPECT_EQ(seen.size(), graph.task_count());

  // 2 — dependency-respecting start times, transfer included.
  for (const afg::Edge& e : graph.edges()) {
    const sched::Assignment parent = table.find(e.from).value();
    const sched::Assignment child = table.find(e.to).value();
    const double transfer = topology.transfer_time(
        parent.primary_host(), child.primary_host(), graph.edge_bytes(e));
    EXPECT_GE(child.est_start + kEps, parent.est_finish + transfer)
        << "edge " << e.from.value() << " -> " << e.to.value();
  }

  // 3 — no host runs two tasks concurrently.
  std::map<common::HostId, std::vector<std::pair<double, double>>> busy;
  for (const sched::Assignment& a : table.assignments) {
    for (common::HostId h : a.hosts) {
      busy[h].emplace_back(a.est_start, a.est_finish);
    }
  }
  for (auto& [host, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first + kEps, intervals[i - 1].second)
          << "host " << host.value() << " double-booked";
    }
  }

  // 4 — makespan is the last completion.
  double last = 0.0;
  for (const sched::Assignment& a : table.assignments) {
    last = std::max(last, a.est_finish);
  }
  EXPECT_DOUBLE_EQ(table.schedule_length, last);
}

TEST(ScaleCorpus, SchedulerInvariantsHoldAcrossTwoHundredCases) {
  scale::CorpusSpec spec;  // 200 cases
  const std::vector<scale::CorpusCase> corpus = scale::make_corpus(spec);
  ASSERT_GE(corpus.size(), 200u);
  for (const scale::CorpusCase& c : corpus) {
    CorpusDeployment dep(c.grid);
    afg::Afg graph = scale::make_workload(
        c.workload, "corpus-" + std::to_string(c.index));
    ASSERT_TRUE(graph.validate().ok()) << "case " << c.index;
    sched::VdceSiteScheduler scheduler(corpus_options(c.index));
    auto table = scheduler.schedule(graph, dep.context);
    ASSERT_TRUE(table.has_value())
        << "case " << c.index << ": " << table.error().to_string();
    check_schedule_invariants(graph, dep.topology, *table, c.index);
  }
}

// ---- economy invariants over the scale corpus (docs/ECONOMY.md) -------------
//
// The same 200 (topology, AFG) pairs, now priced.  Per case:
//   1. the spend tiling is exact and deterministic: compute + transfer ==
//      total(), twice over, byte-for-byte;
//   2. both DBC strategies produce schedules satisfying all four scheduler
//      invariants (they are list schedulers like everyone else — the
//      economic objective must not break dependency or exclusivity rules);
//   3. a loose budget (1.25x the default schedule's quote) admits: the
//      dbc-time schedule's quote stays within it, so the environment's
//      admission gate would never reject it as unaffordable;
//   4. the unconstrained DBC table is field-for-field the default
//      assignment-phase table (the delegation contract the differential
//      suite pins end to end).

/// Run a registry strategy against a corpus deployment (host-selection
/// outputs gathered exactly as the runtime gathers them: every site bids).
common::Expected<sched::ResourceAllocationTable> run_strategy(
    const CorpusDeployment& dep, const afg::Afg& graph,
    const sched::SchedulingPolicy& policy) {
  std::vector<sched::HostSelectionOutput> outputs;
  for (const auto& repo : dep.repos) {
    auto out = sched::HostSelectionAlgorithm::run(graph, repo->site(), *repo,
                                                  dep.predictor);
    if (out) outputs.push_back(std::move(*out));
  }
  auto strategy = sched::make_strategy(policy);
  if (!strategy) return strategy.error();
  return (*strategy)->assign(graph, dep.context, outputs);
}

TEST(EconCorpus, SpendTilingAndDbcInvariantsHoldAcrossTwoHundredCases) {
  scale::CorpusSpec spec;  // 200 cases
  const std::vector<scale::CorpusCase> corpus = scale::make_corpus(spec);
  ASSERT_GE(corpus.size(), 200u);
  const econ::CostModel prices;  // default rate card
  for (const scale::CorpusCase& c : corpus) {
    SCOPED_TRACE("corpus case " + std::to_string(c.index));
    CorpusDeployment dep(c.grid);
    dep.context.prices = &prices;
    afg::Afg graph = scale::make_workload(
        c.workload, "corpus-" + std::to_string(c.index));

    // Baseline: the default availability-aware schedule and its quote.
    sched::SchedulingPolicy base;
    auto base_table = run_strategy(dep, graph, base);
    ASSERT_TRUE(base_table.has_value()) << base_table.error().to_string();
    const econ::SpendBreakdown s0 = econ::estimate_spend(
        graph, *base_table, dep.topology, prices);

    // 1 — exact, deterministic tiling.
    EXPECT_GE(s0.compute, 0.0);
    EXPECT_GE(s0.transfer, 0.0);
    EXPECT_GT(s0.total(), 0.0);  // every corpus case computes something
    EXPECT_EQ(s0.total(), s0.compute + s0.transfer);
    const econ::SpendBreakdown again = econ::estimate_spend(
        graph, *base_table, dep.topology, prices);
    EXPECT_EQ(s0.compute, again.compute);
    EXPECT_EQ(s0.transfer, again.transfer);

    // 2 — dbc-cost under a loose deadline obeys every scheduler invariant.
    sched::SchedulingPolicy cost_policy;
    cost_policy.strategy = "dbc-cost";
    cost_policy.deadline = base_table->schedule_length * 1.25;
    auto cost_table = run_strategy(dep, graph, cost_policy);
    ASSERT_TRUE(cost_table.has_value()) << cost_table.error().to_string();
    EXPECT_EQ(cost_table->scheduler_name, "dbc-cost");
    check_schedule_invariants(graph, dep.topology, *cost_table, c.index);

    // 3 — dbc-time under a loose budget obeys the invariants AND stays
    // affordable, so the admission gate would admit it (the "never
    // rejected as unaffordable" half of the economy contract).
    sched::SchedulingPolicy time_policy;
    time_policy.strategy = "dbc-time";
    time_policy.budget = s0.total() * 1.25;
    auto time_table = run_strategy(dep, graph, time_policy);
    ASSERT_TRUE(time_table.has_value()) << time_table.error().to_string();
    check_schedule_invariants(graph, dep.topology, *time_table, c.index);
    const double time_quote =
        econ::estimate_spend(graph, *time_table, dep.topology, prices).total();
    EXPECT_LE(time_quote, time_policy.budget * (1.0 + 1e-9));

    // 4 — unconstrained DBC delegates to the default assignment phase:
    // identical placements, times, and length; only the name differs.
    sched::SchedulingPolicy uncon;
    uncon.strategy = "dbc-cost";
    auto uncon_table = run_strategy(dep, graph, uncon);
    ASSERT_TRUE(uncon_table.has_value()) << uncon_table.error().to_string();
    EXPECT_EQ(uncon_table->scheduler_name, "dbc-cost");
    EXPECT_EQ(uncon_table->schedule_length, base_table->schedule_length);
    ASSERT_EQ(uncon_table->assignments.size(),
              base_table->assignments.size());
    for (std::size_t i = 0; i < base_table->assignments.size(); ++i) {
      const sched::Assignment& a = base_table->assignments[i];
      const sched::Assignment& b = uncon_table->assignments[i];
      EXPECT_EQ(a.task, b.task);
      EXPECT_EQ(a.site, b.site);
      EXPECT_EQ(a.hosts, b.hosts);
      EXPECT_EQ(a.predicted_time, b.predicted_time);
      EXPECT_EQ(a.est_start, b.est_start);
      EXPECT_EQ(a.est_finish, b.est_finish);
    }
  }
}

// ---- economy admission (docs/ECONOMY.md) ------------------------------------

TEST(EconAdmission, LooseBudgetAdmittedAndWithinBudget) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(4, 800, 1e5);
  // Probe with an unreachable budget to learn the quote...
  RunOptions probe;
  probe.real_kernels = false;
  probe.budget = 1e12;
  auto probe_report = env.run_application(graph, session, probe);
  ASSERT_TRUE(probe_report.has_value()) << probe_report.error().message;
  ASSERT_GT(probe_report->spend(), 0.0);
  // ...then rerun with 25% headroom: admitted, and the quote respects it.
  RunOptions run;
  run.real_kernels = false;
  run.budget = probe_report->spend() * 1.25;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success);
  EXPECT_GT(report->spend(), 0.0);
  EXPECT_LE(report->spend(), report->budget);
  EXPECT_TRUE(report->within_budget());
  EXPECT_EQ(report->spend(),
            report->spend_parts.compute + report->spend_parts.transfer);
}

TEST(EconAdmission, TightBudgetRejectedWithTypedError) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(4, 5000, 1e5);
  RunOptions run;
  run.real_kernels = false;
  run.budget = 1e-9;  // no schedule can quote this low
  auto report = env.run_application(graph, session, run);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kBudgetExceeded);
  EXPECT_NE(report.error().message.find("exceeds the"), std::string::npos);
  EXPECT_NE(report.error().message.find("budget"), std::string::npos);
}

TEST(EconAdmission, DeadlineOnlyRunsAreNeverBudgetRejected) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 1e6;
  run.enforce_admission = true;  // deadline gate on, budget unconstrained
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->deadline_met());
  // Unbudgeted runs carry no quote — their reports stay byte-identical to
  // the pre-economy pipeline (the differential suite pins this).
  EXPECT_EQ(report->spend(), 0.0);
  EXPECT_EQ(report->budget, 0.0);
}

TEST(EconAdmission, DbcStrategiesAreRegistered) {
  EXPECT_TRUE(sched::strategy_registered("dbc-cost"));
  EXPECT_TRUE(sched::strategy_registered("dbc-time"));
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.sched.strategy = "dbc-time";
  run.budget = 1e12;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_EQ(report->scheduler, "dbc-time");
  EXPECT_TRUE(report->within_budget());
}

TEST(EconAdmission, ParamSweepWorkloadRunsUnderBudget) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  scale::WorkloadSpec spec;
  spec.shape = scale::WorkloadShape::kParamSweep;
  spec.tasks = 10;  // root + 8 sweeps + gather
  spec.seed = 7;
  afg::Afg graph = scale::make_workload(spec, "sweep");
  ASSERT_TRUE(graph.validate().ok());
  EXPECT_EQ(graph.task_count(), 10u);
  RunOptions run;
  run.real_kernels = false;
  run.sched.strategy = "dbc-cost";
  run.deadline = 1e6;
  run.budget = 1e12;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success);
  EXPECT_TRUE(report->within_budget());
  EXPECT_GT(report->spend(), 0.0);
}

}  // namespace
}  // namespace vdce
