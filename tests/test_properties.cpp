// Cross-cutting property tests: QoS deadlines and admission control,
// whole-system determinism, randomized failure-injection survival, and DSL
// round-trip stability over generated graphs.
#include <gtest/gtest.h>

#include <set>

#include "afg/generate.hpp"
#include "editor/dsl.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions fast_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 1.0;
  options.runtime.progress_period = 2.0;
  return options;
}

Session login(VdceEnvironment& env) {
  env.add_user("u", "p");
  return env.login(common::SiteId(0), "u", "p").value();
}

// ---- QoS -----------------------------------------------------------------------

TEST(Qos, GenerousDeadlineIsMet) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 1e6;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->deadline_met());
  EXPECT_DOUBLE_EQ(report->deadline, 1e6);
}

TEST(Qos, TightDeadlineReportedAsMissed) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 5000, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 0.001;  // impossible
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);  // still runs to completion
  EXPECT_FALSE(report->deadline_met());
}

TEST(Qos, AdmissionControlRejectsUpFront) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 5000, 1e4);
  RunOptions run;
  run.real_kernels = false;
  run.deadline = 0.001;
  run.enforce_admission = true;
  auto report = env.run_application(graph, session, run);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kNoFeasibleResource);
  EXPECT_NE(report.error().message.find("admission rejected"),
            std::string::npos);
}

TEST(Qos, NoDeadlineAlwaysMet) {
  runtime::ExecutionReport report;
  report.exec_started = 0;
  report.completed = 100;
  EXPECT_TRUE(report.deadline_met());
}

// ---- determinism -----------------------------------------------------------------

TEST(Determinism, IdenticalEnvironmentsProduceIdenticalReports) {
  auto run_once = [] {
    EnvironmentOptions options;
    options.background_load = true;  // include the stochastic pieces
    options.runtime.exec_noise_cv = 0.1;
    VdceEnvironment env(make_campus_pair(9), options);
    env.bring_up();
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();
    env.run_for(10.0);
    common::Rng rng(4);
    afg::LayeredDagSpec spec;
    spec.tasks = 20;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    RunOptions run;
    run.real_kernels = false;
    auto report = env.run_application(graph, session, run);
    EXPECT_TRUE(report.has_value());
    return std::make_pair(report->makespan(), report->outcomes);
  };
  auto [makespan1, outcomes1] = run_once();
  auto [makespan2, outcomes2] = run_once();
  EXPECT_DOUBLE_EQ(makespan1, makespan2);
  ASSERT_EQ(outcomes1.size(), outcomes2.size());
  for (std::size_t i = 0; i < outcomes1.size(); ++i) {
    EXPECT_EQ(outcomes1[i].host, outcomes2[i].host);
    EXPECT_DOUBLE_EQ(outcomes1[i].started, outcomes2[i].started);
    EXPECT_DOUBLE_EQ(outcomes1[i].finished, outcomes2[i].finished);
  }
}

// ---- randomized failure injection ---------------------------------------------------

class FailureInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureInjection, ApplicationSurvivesRandomHostDeaths) {
  auto options = fast_options();
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  VdceEnvironment env(make_campus_pair(GetParam()), options);
  env.bring_up();
  auto session = login(env);

  common::Rng rng(1000 + GetParam());
  afg::LayeredDagSpec spec;
  spec.tasks = 15;
  spec.width = 4;
  spec.min_mflop = 2000;
  spec.max_mflop = 6000;
  afg::Afg graph = afg::make_layered_dag(spec, rng);

  // Kill two random hosts at random times, sparing the coordinator's server
  // machine (coordinator fail-over is documented as out of scope).
  std::set<common::HostId> protected_hosts;
  for (const net::Site& s : env.topology().sites()) {
    protected_hosts.insert(s.server);
  }
  int killed = 0;
  while (killed < 2) {
    const net::Host& h = env.topology().hosts()[rng.pick_index(
        env.topology().host_count())];
    if (protected_hosts.contains(h.id)) continue;
    protected_hosts.insert(h.id);  // don't double-kill
    double when = rng.uniform(2.0, 40.0);
    env.engine().schedule(when, [&env, id = h.id] {
      env.topology().set_host_up(id, false);
    });
    ++killed;
  }

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success) << report->failure_reason;
  // Every outcome ran on a machine that was up at its completion or was
  // re-executed elsewhere afterwards; at minimum, no outcome host may be a
  // host that died before the task's start.
  EXPECT_EQ(report->outcomes.size(), graph.task_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjection,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- DSL round-trip over generated graphs ---------------------------------------------

class DslRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DslRoundTrip, WriteParseWriteIsStable) {
  common::Rng rng(GetParam());
  afg::LayeredDagSpec spec;
  spec.tasks = 12 + GetParam() * 3;
  spec.width = 4;
  spec.parallel_task_fraction = 0.3;
  afg::Afg graph = afg::make_layered_dag(spec, rng);

  std::string once = editor::write_afg(graph);
  auto parsed = editor::parse_afg(once);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  std::string twice = editor::write_afg(*parsed);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(parsed->task_count(), graph.task_count());
  EXPECT_EQ(parsed->edges().size(), graph.edges().size());
  EXPECT_TRUE(parsed->validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace vdce
