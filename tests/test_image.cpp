// Unit tests for the image-exploitation library.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "tasklib/image.hpp"
#include "tasklib/registry.hpp"

namespace vdce::tasklib {
namespace {

TEST(Image, ConstructionAndIndexing) {
  Image img(4, 6, 0.5);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.width(), 6u);
  EXPECT_DOUBLE_EQ(img.at(3, 5), 0.5);
  img.at(1, 2) = 0.9;
  EXPECT_DOUBLE_EQ(img.at(1, 2), 0.9);
  EXPECT_DOUBLE_EQ(img.size_bytes(), 4 * 6 * 8.0);
}

TEST(Image, SyntheticSceneHasTargets) {
  common::Rng rng(1);
  Image img = Image::synthetic_scene(32, 32, 3, rng);
  // Bright 3x3 targets saturate at 1.0.
  int saturated = 0;
  for (double v : img.pixels()) {
    if (v == 1.0) ++saturated;
  }
  EXPECT_GE(saturated, 9);  // at least one full target survives overlap
}

TEST(ConvKernelTest, BoxIsNormalized) {
  ConvKernel k = ConvKernel::box(3);
  double sum = std::accumulate(k.weights.begin(), k.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ConvKernelTest, GaussianIsNormalizedAndPeaked) {
  ConvKernel k = ConvKernel::gaussian(5, 1.0);
  double sum = std::accumulate(k.weights.begin(), k.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Center weight dominates.
  EXPECT_GT(k.at(2, 2), k.at(0, 0));
}

TEST(Convolve, IdentityKernel) {
  common::Rng rng(2);
  Image img = Image::synthetic_scene(8, 8, 1, rng);
  ConvKernel identity{3, {0, 0, 0, 0, 1, 0, 0, 0, 0}};
  auto out = convolve(img, identity);
  ASSERT_TRUE(out.has_value());
  EXPECT_LT(out->max_abs_diff(img), 1e-12);
}

TEST(Convolve, BoxSmoothsConstantImageExactly) {
  Image img(6, 6, 0.7);
  auto out = convolve(img, ConvKernel::box(3));
  ASSERT_TRUE(out.has_value());
  // Clamp-to-edge keeps a constant image constant.
  EXPECT_LT(out->max_abs_diff(img), 1e-12);
}

TEST(Convolve, RejectsMalformed) {
  Image img(4, 4, 0.0);
  EXPECT_FALSE(convolve(Image{}, ConvKernel::box(3)).has_value());
  ConvKernel bad{4, std::vector<double>(16, 0.0)};
  EXPECT_FALSE(convolve(img, bad).has_value());
}

TEST(Sobel, FlatImageHasZeroGradient) {
  Image img(8, 8, 0.4);
  auto out = sobel_magnitude(img);
  ASSERT_TRUE(out.has_value());
  for (double v : out->pixels()) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Sobel, VerticalEdgeDetected) {
  Image img(8, 8, 0.0);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 4; c < 8; ++c) img.at(r, c) = 1.0;
  }
  auto out = sobel_magnitude(img);
  ASSERT_TRUE(out.has_value());
  // Gradient peaks along the edge columns (3 and 4), zero far away.
  EXPECT_GT(out->at(4, 4), 1.0);
  EXPECT_NEAR(out->at(4, 1), 0.0, 1e-12);
  EXPECT_NEAR(out->at(4, 6), 0.0, 1e-12);
}

TEST(HistogramTest, CountsAndClamping) {
  Image img(2, 2);
  img.at(0, 0) = -0.5;  // clamps to bin 0
  img.at(0, 1) = 0.25;
  img.at(1, 0) = 0.75;
  img.at(1, 1) = 2.0;  // clamps to last bin
  auto h = histogram(img, 0.0, 1.0, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[3], 2u);
  EXPECT_EQ(std::accumulate(h.begin(), h.end(), std::size_t{0}), 4u);
}

TEST(Threshold, Binarizes) {
  Image img(1, 3);
  img.at(0, 0) = 0.2;
  img.at(0, 1) = 0.6;
  img.at(0, 2) = 0.5;
  Image out = threshold(img, 0.5);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);  // strict >
}

TEST(Components, CountsSeparateBlobs) {
  Image img(5, 5, 0.0);
  img.at(0, 0) = 1.0;
  img.at(0, 1) = 1.0;  // blob 1 (2 px)
  img.at(3, 3) = 1.0;  // blob 2
  img.at(4, 4) = 1.0;  // blob 3 (diagonal: 4-connectivity separates)
  EXPECT_EQ(count_components(img), 3u);
  EXPECT_EQ(count_components(Image(3, 3, 0.0)), 0u);
  EXPECT_EQ(count_components(Image(3, 3, 1.0)), 1u);
}

TEST(Downsample, AveragePooling) {
  Image img(2, 2);
  img.at(0, 0) = 1.0;
  img.at(0, 1) = 2.0;
  img.at(1, 0) = 3.0;
  img.at(1, 1) = 4.0;
  auto out = downsample(img, 2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->height(), 1u);
  EXPECT_DOUBLE_EQ(out->at(0, 0), 2.5);
  EXPECT_FALSE(downsample(img, 0).has_value());
  EXPECT_FALSE(downsample(img, 3).has_value());
}

TEST(ImageRegistry, LibraryRegistered) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto libs = registry.libraries();
  EXPECT_NE(std::find(libs.begin(), libs.end(), "image"), libs.end());
  EXPECT_GE(registry.tasks_in_library("image").size(), 6u);
}

TEST(ImageRegistry, PipelineThroughKernels) {
  // smooth -> sobel -> segment -> count: targets in a synthetic scene are
  // found end-to-end through the registry kernels.
  TaskRegistry registry;
  register_standard_libraries(registry);
  common::Rng rng(7);
  Image scene = Image::synthetic_scene(48, 48, 3, rng);

  auto smooth = registry.find("image.smooth")->kernel({Value(scene)});
  ASSERT_TRUE(smooth.has_value());
  auto edges = registry.find("image.sobel")->kernel({(*smooth)[0]});
  ASSERT_TRUE(edges.has_value());
  auto mask = registry.find("image.segment")
                  ->kernel({(*edges)[0], Value(0.4)});
  ASSERT_TRUE(mask.has_value());
  auto count = registry.find("image.count_targets")->kernel({(*mask)[0]});
  ASSERT_TRUE(count.has_value());
  EXPECT_GE(std::any_cast<std::size_t>((*count)[0]), 1u);
}

TEST(ImageRegistry, KernelTypeChecks) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto bad = registry.find("image.sobel")->kernel({Value(42)});
  EXPECT_FALSE(bad.has_value());
  auto arity = registry.find("image.segment")->kernel({Value(Image(2, 2))});
  EXPECT_FALSE(arity.has_value());
}

}  // namespace
}  // namespace vdce::tasklib
