// Environment-level differential for the event-kernel redesign: every
// scenario must produce a byte-identical trace whether the engine's pending
// set is the production calendar queue or the frozen binary-heap reference
// (QueueKind::kBinaryHeapReference, the pre-redesign firing order).
//
// Three scenario families, matching the suites that define the repo's
// determinism contract:
//
//   * the 200-case generated scale corpus (docs/SCALING.md),
//   * the chaos replay scenario (crashes + loss + degrade + stale + slow)
//     from tests/test_chaos.cpp,
//   * the 8-tenant concurrent-submission fleet from tests/test_tenancy.cpp.
//
// The kernels differ only in *where* pending events wait, never in *when*
// they fire — so traces, injector logs, and reports must match to the byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "afg/generate.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/strings.hpp"
#include "scale/generate.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

// ---- 200-case scale corpus --------------------------------------------------

std::string run_corpus_case(const scale::CorpusCase& c, sim::QueueKind kind) {
  ScaleSpec spec;
  spec.grid = c.grid;
  spec.options.sim_kernel = kind;
  spec.options.trace.enabled = true;
  spec.options.runtime.exec_noise_cv = 0.1;  // include the stochastic path
  auto env = VdceEnvironment::make_scale_environment(spec);
  EXPECT_TRUE(env.has_value()) << env.error().to_string();
  if (!env) return {};
  auto session =
      (*env)->login(common::SiteId(0), spec.admin_user, spec.admin_password);
  EXPECT_TRUE(session.has_value());
  if (!session) return {};
  afg::Afg graph = scale::make_workload(
      c.workload, "kernel-diff-" + std::to_string(c.index));
  RunOptions run;
  run.real_kernels = false;
  auto report = (*env)->run_application(graph, *session, run);
  EXPECT_TRUE(report.has_value()) << "case " << c.index;
  std::string out = (*env)->trace().to_jsonl();
  if (report.has_value()) out += report->describe(graph);
  return out;
}

TEST(SimKernelDifferential, ScaleCorpusTracesAreByteIdenticalAcrossKernels) {
  scale::CorpusSpec spec;  // the full default 200-case corpus
  std::size_t checked = 0;
  for (const scale::CorpusCase& c : scale::make_corpus(spec)) {
    const std::string calendar =
        run_corpus_case(c, sim::QueueKind::kCalendar);
    const std::string heap =
        run_corpus_case(c, sim::QueueKind::kBinaryHeapReference);
    ASSERT_FALSE(calendar.empty()) << "case " << c.index;
    ASSERT_EQ(calendar, heap) << "case " << c.index
                              << ": the calendar queue changed the trace";
    ++checked;
  }
  EXPECT_EQ(checked, spec.cases);
}

// ---- chaos replay -----------------------------------------------------------

/// The determinism artifact from tests/test_chaos.cpp: every chaos.* /
/// recovery.* trace instant in recording order.
std::string fault_recovery_trace(VdceEnvironment& env) {
  std::string out;
  for (const obs::TraceEvent& event : env.trace().events()) {
    if (event.category != "chaos" && event.category != "recovery") continue;
    out += event.name;
    out += " t=";
    out += common::format_double(event.start, 4);
    for (const obs::TraceArg& a : event.args) {
      out += ' ';
      out += a.key;
      out += '=';
      out += a.value;
    }
    out += '\n';
  }
  return out;
}

std::string run_chaotic_workload(sim::QueueKind kind) {
  chaos::FaultPlan plan;
  plan.name("kernel-diff")
      .seed(21)
      .crash(common::HostId(2), 2.0, 6.0)
      .loss(0.3, 0.5, 5.0, "dm.")
      .degrade(0, 1, 1.0, 10.0, 3.0, 0.5)
      .stale_site(1, 2.0, 4.0)
      .slow(common::HostId(4), 1.0, 6.0, 2.0);
  EnvironmentOptions options;
  options.sim_kernel = kind;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.runtime.seed = 99;
  options.trace.enabled = true;
  options.metrics.enabled = true;
  options.faults = std::move(plan);
  VdceEnvironment env(make_campus_pair(13), options);
  EXPECT_TRUE(env.try_bring_up().ok());
  EXPECT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  afg::Afg graph = afg::make_fork_join(3, 2, 800, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  EXPECT_TRUE(report.has_value());
  env.run_for(5.0);

  std::string out = env.chaos()->log_text();
  out += fault_recovery_trace(env);
  out += env.trace().to_jsonl();
  if (report.has_value()) out += report->describe(graph);
  return out;
}

TEST(SimKernelDifferential, ChaosReplayIsByteIdenticalAcrossKernels) {
  const std::string calendar =
      run_chaotic_workload(sim::QueueKind::kCalendar);
  const std::string heap =
      run_chaotic_workload(sim::QueueKind::kBinaryHeapReference);
  ASSERT_FALSE(calendar.empty());
  EXPECT_EQ(calendar, heap);
}

// ---- 8-tenant fleet ---------------------------------------------------------

std::string run_tenant_fleet(sim::QueueKind kind) {
  scale::TenantSpec tenants;
  tenants.tenants = 8;
  tenants.apps_per_tenant = 2;
  tenants.seed = 7;

  ScaleSpec spec;
  spec.grid.sites = 2;
  spec.grid.hosts_per_site = 6;
  spec.grid.seed = 41;
  spec.options.sim_kernel = kind;
  spec.options.trace.enabled = true;
  spec.options.runtime.exec_noise_cv = 0.0;
  auto env = VdceEnvironment::make_scale_environment(spec);
  EXPECT_TRUE(env.has_value()) << env.error().to_string();
  if (!env) return {};

  const std::vector<scale::TenantArrival> arrivals =
      scale::make_tenant_arrivals(tenants);
  std::vector<Session> sessions;
  for (std::size_t t = 0; t < tenants.tenants; ++t) {
    int priority = 1;
    for (const scale::TenantArrival& a : arrivals) {
      if (a.tenant == t) {
        priority = a.priority;
        break;
      }
    }
    const std::string user = "tenant" + std::to_string(t);
    EXPECT_TRUE((*env)->try_add_user(user, "pw", priority).ok());
    sessions.push_back((*env)->login(common::SiteId(0), user, "pw").value());
  }

  std::vector<AppHandle> handles;
  std::vector<afg::Afg> graphs;
  for (const scale::TenantArrival& a : arrivals) {
    if (a.at > (*env)->now()) (*env)->run_for(a.at - (*env)->now());
    graphs.push_back(scale::make_workload(a.workload, a.app_name));
    RunOptions run;
    run.real_kernels = false;
    auto handle =
        (*env)->submit_application(graphs.back(), sessions[a.tenant], run);
    EXPECT_TRUE(handle.has_value()) << a.app_name;
    if (handle) handles.push_back(*handle);
  }
  EXPECT_TRUE((*env)->drain().ok());

  std::string out = (*env)->trace().to_jsonl();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    auto report = (*env)->report(handles[i]);
    EXPECT_TRUE(report.has_value());
    if (report) out += report->describe(graphs[i]);
  }
  return out;
}

TEST(SimKernelDifferential, EightTenantFleetIsByteIdenticalAcrossKernels) {
  const std::string calendar = run_tenant_fleet(sim::QueueKind::kCalendar);
  const std::string heap =
      run_tenant_fleet(sim::QueueKind::kBinaryHeapReference);
  ASSERT_FALSE(calendar.empty());
  EXPECT_EQ(calendar, heap);
}

}  // namespace
}  // namespace vdce
