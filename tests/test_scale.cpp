// vdce::scale tests: generator determinism and structure, ScaleSpec
// environment bring-up, whole-system trace determinism at 10x the testbed
// topology size, and AFG DSL round-trip / malformed-input fuzzing over
// generated workloads.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "editor/dsl.hpp"
#include "scale/generate.hpp"
#include "vdce/environment.hpp"

namespace vdce {
namespace {

// ---- grid generator --------------------------------------------------------------

TEST(GridGenerator, ShapeMatchesSpec) {
  scale::GridSpec spec;
  spec.sites = 5;
  spec.hosts_per_site = 7;
  spec.group_size = 3;
  spec.seed = 42;
  net::Topology t = scale::make_grid(spec);
  EXPECT_EQ(t.site_count(), 5u);
  EXPECT_EQ(t.host_count(), 35u);
  for (const net::Site& s : t.sites()) {
    EXPECT_EQ(s.hosts.size(), 7u);
    EXPECT_TRUE(s.server.valid());
    // ceil(7 / 3) = 3 groups per site.
    EXPECT_EQ(s.groups.size(), 3u);
  }
  for (const net::Host& h : t.hosts()) {
    EXPECT_GE(h.spec.speed_mflops, spec.min_mflops);
    EXPECT_LE(h.spec.speed_mflops, spec.max_mflops);
    EXPECT_GE(h.spec.memory_mb, 64.0);
    EXPECT_GE(h.state.cpu_load, 0.0);
    EXPECT_FALSE(h.spec.name.empty());
    EXPECT_FALSE(h.spec.arch.empty());
    EXPECT_TRUE(h.state.up);
  }
}

TEST(GridGenerator, DeterministicForEqualSpecs) {
  scale::GridSpec spec;
  spec.sites = 6;
  spec.hosts_per_site = 9;
  spec.seed = 7;
  net::Topology a = scale::make_grid(spec);
  net::Topology b = scale::make_grid(spec);
  ASSERT_EQ(a.host_count(), b.host_count());
  for (std::size_t i = 0; i < a.host_count(); ++i) {
    const net::Host& x = a.hosts()[i];
    const net::Host& y = b.hosts()[i];
    EXPECT_EQ(x.spec.name, y.spec.name);
    EXPECT_EQ(x.spec.ip, y.spec.ip);
    EXPECT_EQ(x.spec.arch, y.spec.arch);
    EXPECT_EQ(x.spec.os, y.spec.os);
    EXPECT_EQ(x.spec.machine_type, y.spec.machine_type);
    EXPECT_EQ(x.spec.speed_mflops, y.spec.speed_mflops);
    EXPECT_EQ(x.spec.memory_mb, y.spec.memory_mb);
    EXPECT_EQ(x.state.cpu_load, y.state.cpu_load);
  }
  // Link model identical: every site-pair transfer agrees exactly.
  for (const net::Site& s1 : a.sites()) {
    for (const net::Site& s2 : a.sites()) {
      EXPECT_EQ(a.site_transfer_time(s1.id, s2.id, 1e6),
                b.site_transfer_time(s1.id, s2.id, 1e6));
    }
  }
}

TEST(GridGenerator, DifferentSeedsDiffer) {
  scale::GridSpec spec;
  spec.seed = 1;
  net::Topology a = scale::make_grid(spec);
  spec.seed = 2;
  net::Topology b = scale::make_grid(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.host_count() && !any_diff; ++i) {
    any_diff = a.hosts()[i].spec.speed_mflops != b.hosts()[i].spec.speed_mflops;
  }
  EXPECT_TRUE(any_diff);
}

// ---- workload generator ----------------------------------------------------------

TEST(WorkloadGenerator, AllShapesProduceValidGraphsOfRequestedSize) {
  for (scale::WorkloadShape shape :
       {scale::WorkloadShape::kLayered, scale::WorkloadShape::kForkJoin,
        scale::WorkloadShape::kRandomDag}) {
    scale::WorkloadSpec spec;
    spec.shape = shape;
    spec.tasks = 48;
    spec.seed = 11;
    afg::Afg graph = scale::make_workload(spec);
    SCOPED_TRACE(scale::to_string(shape));
    EXPECT_TRUE(graph.validate().ok());
    EXPECT_GE(graph.task_count(), 40u);  // fork-join rounds to its shape
    EXPECT_FALSE(graph.entry_tasks().empty());
    EXPECT_FALSE(graph.exit_tasks().empty());
  }
}

TEST(WorkloadGenerator, RandomDagRespectsFanInCap) {
  scale::WorkloadSpec spec;
  spec.shape = scale::WorkloadShape::kRandomDag;
  spec.tasks = 120;
  spec.max_fan_in = 4;
  spec.seed = 99;
  afg::Afg graph = scale::make_workload(spec);
  ASSERT_TRUE(graph.validate().ok());
  EXPECT_EQ(graph.task_count(), 120u);
  for (const afg::TaskNode& t : graph.tasks()) {
    EXPECT_LE(graph.in_degree(t.id), 4u) << t.instance_name;
  }
}

TEST(WorkloadGenerator, DeterministicDslText) {
  scale::WorkloadSpec spec;
  spec.shape = scale::WorkloadShape::kRandomDag;
  spec.tasks = 40;
  spec.parallel_fraction = 0.3;
  spec.seed = 5;
  afg::Afg a = scale::make_workload(spec, "w");
  afg::Afg b = scale::make_workload(spec, "w");
  EXPECT_EQ(editor::write_afg(a), editor::write_afg(b));
}

TEST(CorpusGenerator, ReproducibleAndInRange) {
  scale::CorpusSpec spec;
  auto a = scale::make_corpus(spec);
  auto b = scale::make_corpus(spec);
  ASSERT_EQ(a.size(), spec.cases);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid.seed, b[i].grid.seed);
    EXPECT_EQ(a[i].workload.seed, b[i].workload.seed);
    EXPECT_GE(a[i].grid.sites, spec.min_sites);
    EXPECT_LE(a[i].grid.sites, spec.max_sites);
    EXPECT_GE(a[i].workload.tasks, spec.min_tasks);
    EXPECT_LE(a[i].workload.tasks, spec.max_tasks);
  }
}

// ---- ScaleSpec environment bring-up ----------------------------------------------

TEST(ScaleEnvironment, BringsUpAndRunsAWorkload) {
  ScaleSpec spec;
  spec.grid.sites = 3;
  spec.grid.hosts_per_site = 5;
  spec.grid.seed = 12;
  spec.options.runtime.exec_noise_cv = 0.0;
  auto env = VdceEnvironment::make_scale_environment(spec);
  ASSERT_TRUE(env.has_value()) << env.error().to_string();
  EXPECT_EQ((*env)->topology().host_count(), 15u);
  auto session =
      (*env)->login(common::SiteId(0), spec.admin_user, spec.admin_password);
  ASSERT_TRUE(session.has_value()) << session.error().to_string();

  scale::WorkloadSpec w;
  w.shape = scale::WorkloadShape::kLayered;
  w.tasks = 12;
  w.width = 4;
  w.seed = 3;
  afg::Afg graph = scale::make_workload(w, "scale-env-smoke");
  RunOptions run;
  run.real_kernels = false;
  auto report = (*env)->run_application(graph, *session, run);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_TRUE(report->success) << report->failure_reason;
  EXPECT_EQ(report->outcomes.size(), graph.task_count());
}

// ---- determinism regression at 10x topology size ---------------------------------
//
// The seed testbed (campus pair) has 12 hosts; this runs the full
// environment — bring-up, scheduling, execution, daemons — on a generated
// 8x16 grid (128 hosts) and asserts the emitted JSONL trace is
// byte-identical across two runs from the same seed.  Any hidden ordering
// or cache dependence introduced by the scheduler optimisation would show
// up here as a trace diff.

TEST(ScaleDeterminism, TraceIsByteIdenticalAtTenTimesTopologySize) {
  auto run_once = [] {
    ScaleSpec spec;
    spec.grid.sites = 8;
    spec.grid.hosts_per_site = 16;
    spec.grid.seed = 2026;
    spec.options.trace.enabled = true;
    spec.options.runtime.exec_noise_cv = 0.1;  // include the stochastic path
    auto env = VdceEnvironment::make_scale_environment(spec);
    EXPECT_TRUE(env.has_value());
    auto session =
        (*env)->login(common::SiteId(0), spec.admin_user, spec.admin_password);
    EXPECT_TRUE(session.has_value());
    scale::WorkloadSpec w;
    w.shape = scale::WorkloadShape::kRandomDag;
    w.tasks = 48;
    w.seed = 77;
    afg::Afg graph = scale::make_workload(w, "determinism-10x");
    RunOptions run;
    run.real_kernels = false;
    auto report = (*env)->run_application(graph, *session, run);
    EXPECT_TRUE(report.has_value());
    EXPECT_TRUE(report->success);
    return (*env)->trace().to_jsonl();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- AFG DSL round-trip fuzz over generated workloads ----------------------------

void expect_structurally_equal(const afg::Afg& a, const afg::Afg& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    const afg::TaskNode& x = a.tasks()[i];
    const afg::TaskNode& y = b.tasks()[i];
    EXPECT_EQ(x.instance_name, y.instance_name);
    EXPECT_EQ(x.task_name, y.task_name);
    EXPECT_EQ(x.props.mode, y.props.mode);
    EXPECT_EQ(x.props.num_nodes, y.props.num_nodes);
    ASSERT_EQ(x.props.inputs.size(), y.props.inputs.size());
    for (std::size_t p = 0; p < x.props.inputs.size(); ++p) {
      EXPECT_EQ(x.props.inputs[p].dataflow, y.props.inputs[p].dataflow);
      EXPECT_EQ(x.props.inputs[p].path, y.props.inputs[p].path);
    }
  }
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]) << "edge " << i;
  }
}

class ScaleDslFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScaleDslFuzz, GeneratedWorkloadsRoundTripThroughTheDsl) {
  const std::uint64_t seed = GetParam();
  scale::WorkloadSpec spec;
  spec.shape = static_cast<scale::WorkloadShape>(seed % 3);
  spec.tasks = 10 + (seed % 7) * 9;
  spec.width = 3 + seed % 5;
  spec.parallel_fraction = seed % 4 == 0 ? 0.3 : 0.0;
  spec.seed = seed;
  afg::Afg graph = scale::make_workload(spec, "fuzz-" + std::to_string(seed));

  const std::string once = editor::write_afg(graph);
  auto parsed = editor::parse_afg(once);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  expect_structurally_equal(graph, *parsed);
  EXPECT_EQ(editor::write_afg(*parsed), once);
  EXPECT_TRUE(parsed->validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleDslFuzz,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{25}));

TEST(ScaleDslFuzz, MalformedInputsReturnErrorsNotCrashes) {
  // A hand-built corpus of broken documents: every one must come back as a
  // clean Expected error (never a crash, hang, or successful parse of
  // nonsense that validate() would then accept).
  const std::vector<std::string> corpus = {
      "",
      "\n\n\n",
      "garbage",
      "application",
      "task a x {\n}\n",                             // no application line
      "application x\ntask a x {\n  mode wat\n}\n",  // bad mode
      "application x\ntask a x {\n  nodes -3\n}\n",
      "application x\ntask a x {\n  nodes many\n}\n",
      "application x\ntask a x {\n  input file\n}\n",
      "application x\ntask a x {\n  output data notanumber\n}\n",
      "application x\ntask a x {\n",                   // unterminated block
      "application x\nconnect a:0 -> b:0\n",           // unknown tasks
      "application x\ntask a x {\n  mode sequential\n}\n"
      "connect a:7 -> a:0\n",                          // bad port, self edge
      "application x\ntask a x {\n  mode parallel\n}\n",  // parallel, no nodes
      std::string(4096, '{'),
      std::string("application x\n") + std::string(1000, '\xff'),
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    auto r = editor::parse_afg(corpus[i]);
    if (r.has_value()) {
      // A lenient parse is acceptable only if the result is a coherent AFG.
      EXPECT_TRUE(r->validate().ok()) << "corpus entry " << i;
    } else {
      EXPECT_FALSE(r.error().message.empty()) << "corpus entry " << i;
    }
  }

  // Truncation sweep: cutting a valid document at any byte must never crash
  // the parser.
  scale::WorkloadSpec spec;
  spec.tasks = 12;
  spec.seed = 4;
  const std::string valid = editor::write_afg(scale::make_workload(spec));
  for (std::size_t cut = 0; cut < valid.size(); cut += 7) {
    auto r = editor::parse_afg(valid.substr(0, cut));
    if (r.has_value()) EXPECT_GE(r->task_count(), 0u);
  }
}

}  // namespace
}  // namespace vdce
