// Recovery-path integration tests: value integrity across reschedules,
// file-input restaging, suspension during setup, and protocol coexistence.
#include <gtest/gtest.h>

#include "afg/generate.hpp"
#include "editor/builder.hpp"
#include "tasklib/matrix.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions recovery_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  return options;
}

Session login(VdceEnvironment& env) {
  env.add_user("u", "p");
  return env.login(common::SiteId(0), "u", "p").value();
}

/// Build the Figure-1 solver with real kernels and staged inputs; returns
/// the graph plus the ground truth for verification.
struct SolverApp {
  afg::Afg graph;
  tasklib::Matrix a;
  tasklib::Vector b;
};

SolverApp make_solver(VdceEnvironment& env, std::size_t n) {
  common::Rng rng(17);
  SolverApp app{afg::Afg{}, tasklib::Matrix::random_diag_dominant(n, rng), {}};
  app.b.assign(n, 0.0);
  for (double& v : app.b) v = rng.uniform(-2, 2);
  env.store().put("/u/A.dat", tasklib::Value(app.a), app.a.size_bytes());
  env.store().put("/u/b.dat", tasklib::Value(app.b),
                  static_cast<double>(n * sizeof(double)));

  editor::AppBuilder builder("solver");
  auto lu = builder.task("LU", "matrix.lu_decomposition")
                .input_file("/u/A.dat", app.a.size_bytes())
                .output_data(app.a.size_bytes());
  auto fwd = builder.task("Fwd", "matrix.forward_substitution")
                 .output_data(app.a.size_bytes());
  auto bwd = builder.task("Bwd", "matrix.backward_substitution")
                 .output_data(static_cast<double>(n * sizeof(double)));
  builder.link(lu, fwd).value();
  fwd.input_file("/u/b.dat", static_cast<double>(n * sizeof(double)));
  builder.link(fwd, bwd).value();
  app.graph = builder.build().value();
  return app;
}

TEST(Recovery, RealKernelAnswerSurvivesHostFailure) {
  // The LU host dies mid-execution; the rescheduled pipeline must still
  // produce the numerically correct x — proving the coordinator re-stages
  // file inputs and re-pulls dataflow values correctly.
  VdceEnvironment env(make_campus_pair(13), recovery_options());
  env.bring_up();
  auto session = login(env);
  SolverApp solver = make_solver(env, 48);  // LU ~ seconds of sim time

  auto table = env.schedule(solver.graph, session);
  ASSERT_TRUE(table.has_value());
  common::HostId victim =
      table->find(solver.graph.find_task("LU").value())->primary_host();
  if (victim == env.topology().site(common::SiteId(0)).server) {
    GTEST_SKIP() << "LU landed on the coordinator host";
  }
  env.engine().schedule(1.0, [&] { env.topology().set_host_up(victim, false); });

  auto report = env.execute_with_table(solver.graph, *table, session, {});
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);

  auto x = std::any_cast<tasklib::Vector>(report->exit_outputs.at(
      solver.graph.find_task("Bwd")->value()));
  EXPECT_LT(tasklib::residual_inf(solver.a, x, solver.b), 1e-8);
}

TEST(Recovery, DownstreamFailureTriggersResendFromFinishedParent) {
  // Kill the host of a *later* stage after the first stage completed: the
  // parent's cached output must be re-sent to the new machine.  Stage
  // placement is pinned via the editor's preferred-machine property so the
  // stages are guaranteed to sit on distinct, non-server machines.
  VdceEnvironment env(make_campus_pair(13), recovery_options());
  env.bring_up();
  auto session = login(env);

  const net::Site& site0 = env.topology().site(common::SiteId(0));
  std::string host_a = env.topology().host(site0.hosts[1]).spec.name;
  std::string host_b = env.topology().host(site0.hosts[2]).spec.name;

  common::Rng rng(17);
  const std::size_t n = 48;
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  tasklib::Vector b(n);
  for (double& v : b) v = rng.uniform(-2, 2);
  env.store().put("/u/A.dat", tasklib::Value(a), a.size_bytes());
  env.store().put("/u/b.dat", tasklib::Value(b),
                  static_cast<double>(n * sizeof(double)));

  editor::AppBuilder builder("pinned-solver");
  auto lu = builder.task("LU", "matrix.lu_decomposition")
                .prefer_machine(host_a)
                .input_file("/u/A.dat", a.size_bytes())
                .output_data(a.size_bytes());
  auto fwd = builder.task("Fwd", "matrix.forward_substitution")
                 .prefer_machine(host_b)
                 .output_data(a.size_bytes());
  auto bwd = builder.task("Bwd", "matrix.backward_substitution")
                 .prefer_machine(host_b)
                 .output_data(static_cast<double>(n * sizeof(double)));
  builder.link(lu, fwd).value();
  fwd.input_file("/u/b.dat", static_cast<double>(n * sizeof(double)));
  builder.link(fwd, bwd).value();
  afg::Afg graph = builder.build().value();

  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  auto lu_assignment = table->find(graph.find_task("LU").value());
  ASSERT_EQ(lu_assignment->primary_host(), site0.hosts[1]);

  // Kill host_b after LU has certainly finished (Fwd/Bwd must move; LU's
  // cached output on host_a feeds the resend).
  env.engine().schedule(lu_assignment->est_finish + 0.5, [&] {
    env.topology().set_host_up(site0.hosts[2], false);
  });

  auto report = env.execute_with_table(graph, *table, session, {});
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);
  auto x = std::any_cast<tasklib::Vector>(
      report->exit_outputs.at(graph.find_task("Bwd")->value()));
  EXPECT_LT(tasklib::residual_inf(a, x, b), 1e-8);
}

TEST(Recovery, CascadeReexecutesDeadParent) {
  // Parent finishes, then its host dies, *then* the child's host dies too:
  // the parent's cached output is gone, so recovery must re-execute the
  // parent before the moved child can run.  Placement pinned as above.
  VdceEnvironment env(make_campus_pair(13), recovery_options());
  env.bring_up();
  auto session = login(env);

  const net::Site& site0 = env.topology().site(common::SiteId(0));
  std::string host_a = env.topology().host(site0.hosts[1]).spec.name;
  std::string host_b = env.topology().host(site0.hosts[2]).spec.name;

  editor::AppBuilder builder("cascade");
  auto s0 = builder.task("s0", "synthetic.w6000")
                .prefer_machine(host_a)
                .output_data(1e5);
  auto s1 = builder.task("s1", "synthetic.w6000").prefer_machine(host_b);
  builder.link(s0, s1).value();
  afg::Afg graph = builder.build().value();

  RunOptions run;
  run.real_kernels = false;
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  auto s0_assignment = table->find(graph.find_task("s0").value());

  env.engine().schedule(s0_assignment->est_finish + 1.0, [&] {
    env.topology().set_host_up(site0.hosts[1], false);
  });
  env.engine().schedule(s0_assignment->est_finish + 2.0, [&] {
    env.topology().set_host_up(site0.hosts[2], false);
  });

  auto report = env.execute_with_table(graph, *table, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);
  // s0 must have re-executed (its first result died with its host).
  EXPECT_GE(report->outcomes[0].attempts, 2);
  // Neither task completed on a dead machine.
  for (const auto& outcome : report->outcomes) {
    EXPECT_NE(outcome.host, site0.hosts[1]);
    EXPECT_NE(outcome.host, site0.hosts[2]);
  }
}

TEST(Recovery, SuspendDuringSetupDelaysButCompletes) {
  VdceEnvironment env(make_campus_pair(13), recovery_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(2, 1000, 1e4);
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());

  // Suspend almost immediately (possibly still in channel setup), resume
  // 20 simulated seconds later.
  runtime::SiteManager& sm = env.site_manager(common::SiteId(0));
  common::AppId app(1);  // schedule() consumed id 0
  env.engine().schedule(0.05, [&] { sm.suspend_application(app); });
  env.engine().schedule(20.0, [&] { sm.resume_application(app); });

  RunOptions run;
  run.real_kernels = false;
  auto report = env.execute_with_table(graph, *table, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
}

TEST(Recovery, DsmAndApplicationsShareTheFabric) {
  // DSM protocol traffic and an application execution interleave on the
  // same hosts without stepping on each other's message handling.
  VdceEnvironment env(make_campus_pair(13), recovery_options());
  env.bring_up();
  auto session = login(env);
  dsm::DsmRuntime& dsm_runtime = env.enable_dsm();
  dsm_runtime.define_object("status", tasklib::Value(0), 128);

  // A DSM "status heartbeat" loop runs while the application executes.
  auto client = dsm_runtime.client(env.topology().site(common::SiteId(1)).hosts[2]);
  struct Heartbeat {
    dsm::DsmClient& client;
    int remaining;
    void beat() {
      if (remaining-- == 0) return;
      client.write("status", tasklib::Value(remaining),
                   [this] { beat(); });
    }
  };
  Heartbeat heartbeat{client, 200};
  heartbeat.beat();

  afg::Afg graph = afg::make_fork_join(3, 2, 800, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(std::any_cast<int>(dsm_runtime.home_value("status").value()), 0);
}

}  // namespace
}  // namespace vdce
