// Unit tests for the performance-prediction model (§3 core).
#include <gtest/gtest.h>

#include "db/task_perf.hpp"
#include "predict/model.hpp"

namespace vdce::predict {
namespace {

db::ResourceRecord host(double mflops, double load = 0.0,
                        double memory_mb = 256.0, std::uint32_t id = 0) {
  db::ResourceRecord rec;
  rec.host = common::HostId(id);
  rec.site = common::SiteId(0);
  rec.host_name = "h" + std::to_string(id);
  rec.speed_mflops = mflops;
  rec.total_memory_mb = memory_mb;
  if (load > 0.0) {
    rec.workload_history.push_back(db::WorkloadSample{0.0, load, memory_mb});
  }
  return rec;
}

db::TaskPerfRecord task(double mflop, double mem_mb = 8.0,
                        double parallel_fraction = 0.9) {
  db::TaskPerfRecord rec;
  rec.task_name = "t";
  rec.computation_mflop = mflop;
  rec.required_memory_mb = mem_mb;
  rec.base_exec_time = mflop / 100.0;
  rec.parallel_fraction = parallel_fraction;
  return rec;
}

TEST(Predictor, IdleHostIsWorkOverSpeed) {
  Predictor p;
  auto t = p.predict(task(1000), host(200));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 5.0);
}

TEST(Predictor, LoadDegradesEffectiveSpeed) {
  Predictor p;
  auto idle = p.predict(task(1000), host(200, 0.0));
  auto busy = p.predict(task(1000), host(200, 1.0));
  ASSERT_TRUE(idle.has_value() && busy.has_value());
  EXPECT_DOUBLE_EQ(*busy, 2.0 * *idle);  // 1/(1+1) of the machine left
}

TEST(Predictor, EffectiveMflops) {
  EXPECT_DOUBLE_EQ(Predictor::effective_mflops(host(300, 2.0)), 100.0);
  EXPECT_DOUBLE_EQ(Predictor::effective_mflops(host(300)), 300.0);
}

TEST(Predictor, MemoryInfeasibleFails) {
  Predictor p;
  auto t = p.predict(task(1000, /*mem_mb=*/512), host(200, 0.0, 256));
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().code, common::ErrorCode::kNoFeasibleResource);
}

TEST(Predictor, PagingPenaltyWhenAvailableTight) {
  Predictor p;
  db::ResourceRecord h = host(100, 0.0, 256);
  // Total memory is fine, but the live sample says only 4MB is free.
  h.workload_history.push_back(db::WorkloadSample{0.0, 0.0, 4.0});
  auto t = p.predict(task(1000, /*mem_mb=*/8), h);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 10.0 * p.options().paging_penalty);
}

TEST(Predictor, MeasuredHistoryWins) {
  Predictor p;
  db::TaskPerformanceDb database;
  auto rec = task(1000);
  database.register_task(rec);
  db::ResourceRecord h = host(200, 0.0, 256, 7);
  ASSERT_TRUE(database.record_execution("t", h.host, 42.0).ok());
  auto with = p.predict(rec, h, &database);
  auto without = p.predict(rec, h);
  ASSERT_TRUE(with.has_value() && without.has_value());
  EXPECT_DOUBLE_EQ(*with, 42.0);
  EXPECT_DOUBLE_EQ(*without, 5.0);
}

TEST(Predictor, MeasurementThresholdRespected) {
  ModelOptions options;
  options.min_measurements = 3;
  Predictor p(options);
  db::TaskPerformanceDb database;
  auto rec = task(1000);
  database.register_task(rec);
  db::ResourceRecord h = host(200);
  (void)database.record_execution("t", h.host, 42.0);
  auto t = p.predict(rec, h, &database);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 5.0);  // analytic path: only 1 of 3 required samples
}

TEST(Predictor, ParallelSpeedupFollowsAmdahl) {
  Predictor p;
  auto rec = task(1000, 8.0, 0.9);
  std::vector<db::ResourceRecord> quad;
  for (std::uint32_t i = 0; i < 4; ++i) quad.push_back(host(100, 0, 256, i));
  auto one = p.predict(rec, host(100));
  auto four = p.predict(rec, quad);
  ASSERT_TRUE(one.has_value() && four.has_value());
  // T4 = 10*(0.1 + 0.9/4) + sync = 3.25 + 0.04.
  EXPECT_NEAR(*four, 3.29, 1e-9);
  EXPECT_LT(*four, *one);
}

TEST(Predictor, SlowestGroupMemberGates) {
  Predictor p;
  auto rec = task(1000, 8.0, 1.0);
  std::vector<db::ResourceRecord> mixed{host(400, 0, 256, 0),
                                        host(100, 0, 256, 1)};
  auto t = p.predict(rec, mixed);
  ASSERT_TRUE(t.has_value());
  // Fully parallel on 2 nodes at the slower 100 MFLOPS: 10/2 + sync.
  EXPECT_NEAR(*t, 5.02, 1e-9);
}

TEST(Predictor, EmptyHostsRejected) {
  Predictor p;
  auto t = p.predict(task(100), std::vector<db::ResourceRecord>{});
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().code, common::ErrorCode::kInvalidArgument);
}

// ---- ground truth -------------------------------------------------------------

TEST(GroundTruth, MatchesPredictorWhenNoiseFree) {
  net::Topology topology;
  auto s = topology.add_site("s", net::LinkSpec{});
  topology.add_host(s, net::HostSpec{"h", "ip", "a", "o", "t", 200, 256});
  GroundTruthModel gt(topology, 0.0);
  common::Rng rng(1);
  auto elapsed = gt.actual_time(task(1000), {common::HostId(0)}, rng);
  EXPECT_DOUBLE_EQ(elapsed, 5.0);
}

TEST(GroundTruth, ReadsLiveLoad) {
  net::Topology topology;
  auto s = topology.add_site("s", net::LinkSpec{});
  topology.add_host(s, net::HostSpec{"h", "ip", "a", "o", "t", 200, 256});
  topology.set_cpu_load(common::HostId(0), 1.0);
  GroundTruthModel gt(topology, 0.0);
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(gt.actual_time(task(1000), {common::HostId(0)}, rng), 10.0);
}

TEST(GroundTruth, NoiseStaysPositiveAndVaries) {
  net::Topology topology;
  auto s = topology.add_site("s", net::LinkSpec{});
  topology.add_host(s, net::HostSpec{"h", "ip", "a", "o", "t", 200, 256});
  GroundTruthModel gt(topology, 0.3);
  common::Rng rng(2);
  double first = gt.actual_time(task(1000), {common::HostId(0)}, rng);
  bool varied = false;
  for (int i = 0; i < 20; ++i) {
    double v = gt.actual_time(task(1000), {common::HostId(0)}, rng);
    EXPECT_GT(v, 0.0);
    if (v != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(GroundTruth, PredictionErrorGrowsWithStaleness) {
  // The db view says idle; the live host is loaded -> prediction is
  // optimistic by exactly the load factor.  This is the E3 mechanism.
  net::Topology topology;
  auto s = topology.add_site("s", net::LinkSpec{});
  topology.add_host(s, net::HostSpec{"h", "ip", "a", "o", "t", 100, 256});
  topology.set_cpu_load(common::HostId(0), 2.0);
  Predictor p;
  GroundTruthModel gt(topology, 0.0);
  common::Rng rng(3);
  auto predicted = p.predict(task(1000), host(100, 0.0));
  double actual = gt.actual_time(task(1000), {common::HostId(0)}, rng);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_DOUBLE_EQ(actual / *predicted, 3.0);
}

}  // namespace
}  // namespace vdce::predict
