// chaos × reservations — crash inside a committed window
// (docs/RESERVATIONS.md, docs/FAULT_INJECTION.md).
//
// A machine failure inside (or ahead of) a committed reservation window
// must stay a *booking-local* event: the detecting Site Manager re-places
// only the victim window — the lowest-id up machine that keeps the window
// conflict-free substitutes for the dead one — the owning application
// survives through ordinary task recovery, the displacement surfaces as a
// typed health alert ("reservation-displaced") plus a reservation.displace
// trace instant, and the whole scenario replays byte-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "editor/builder.hpp"
#include "obs/health.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

/// Fan-out/fan-in app whose body tasks run long enough for a mid-flight
/// crash to land inside task execution.
afg::Afg reserved_app(const std::string& name) {
  editor::AppBuilder app(name);
  auto head = app.task("head", "synthetic.w400").output_data(5e4);
  auto tail = app.task("tail", "synthetic.w300");
  for (int i = 0; i < 3; ++i) {
    auto body = app.task("body" + std::to_string(i), "synthetic.w3000")
                    .output_data(5e4);
    EXPECT_TRUE(app.link(head, body).has_value());
    EXPECT_TRUE(app.link(body, tail).has_value());
  }
  return app.build().value();
}

struct ReservedRun {
  runtime::ExecutionReport report;
  std::string trace_jsonl;
  std::uint64_t windows_displaced = 0;
  bool displacement_alert = false;
  bool ok = false;
};

/// Bring up the campus pair, commit a window over three non-server hosts,
/// run the owner's submission through the window, and drain.  When `plan`
/// is non-empty it is armed before bring-up.
ReservedRun run_reserved(chaos::FaultPlan plan) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.trace.enabled = true;
  options.metrics.enabled = true;
  options.health.enabled = true;
  options.faults = std::move(plan);
  VdceEnvironment env(make_campus_pair(19), options);
  env.bring_up();

  ReservedRun result;
  EXPECT_TRUE(env.try_add_user("owner", "p").ok());
  Session session = env.login(common::SiteId(0), "owner", "p").value();

  // Book three machines that are not site servers (crashing a Site Manager
  // is a different scenario, covered by test_chaos_cascade).
  std::vector<common::HostId> servers;
  for (const net::Site& s : env.sites()) servers.push_back(s.server);
  std::vector<common::HostId> booked;
  for (const net::Host& h : env.hosts()) {
    if (std::find(servers.begin(), servers.end(), h.id) != servers.end()) {
      continue;
    }
    booked.push_back(h.id);
    if (booked.size() == 3) break;
  }
  ReservationRequest request;
  request.hosts = booked;
  request.start = 1.0;
  request.end = 600.0;
  auto ticket = env.reserve(session, request);
  EXPECT_TRUE(ticket.has_value()) << ticket.error().to_string();
  if (!ticket) return result;

  RunOptions run;
  run.real_kernels = false;
  run.reservation = *ticket;
  auto handle = env.submit_application(reserved_app("windowed"), session, run);
  EXPECT_TRUE(handle.has_value()) << handle.error().to_string();
  if (!handle) return result;
  EXPECT_TRUE(env.drain().ok());

  auto report = env.report(*handle);
  EXPECT_TRUE(report.has_value()) << report.error().to_string();
  if (!report) return result;
  result.report = std::move(*report);
  result.trace_jsonl = env.trace().to_jsonl();
  result.windows_displaced =
      env.metrics().counter("reservation.windows_displaced").value();
  for (const obs::health::Alert& alert : env.health().alerts()) {
    if (alert.rule == "reservation-displaced") result.displacement_alert = true;
  }
  result.ok = true;
  return result;
}

/// The host to crash and when: from the fault-free control run, the middle
/// of the longest task interval.  Every outcome host is a booked non-server
/// machine by construction.
struct CrashTarget {
  std::uint32_t host = 0;
  double at = 0.0;
};

CrashTarget pick_target(const ReservedRun& control) {
  CrashTarget best;
  double best_span = 0.0;
  for (const runtime::TaskOutcome& o : control.report.outcomes) {
    const double span = o.finished - o.started;
    if (span > best_span) {
      best_span = span;
      best.host = o.host.value();
      best.at = o.started + span / 2.0;
    }
  }
  EXPECT_GT(best_span, 0.0) << "control run produced no usable interval";
  return best;
}

TEST(ReservationChaos, CrashInsideWindowDisplacesOnlyTheVictimBooking) {
  const ReservedRun control = run_reserved(chaos::FaultPlan{});
  ASSERT_TRUE(control.ok);
  ASSERT_TRUE(control.report.success) << control.report.failure_reason;
  EXPECT_EQ(control.report.failures_survived, 0);
  EXPECT_EQ(control.windows_displaced, 0u);
  EXPECT_FALSE(control.displacement_alert);
  const CrashTarget target = pick_target(control);

  chaos::FaultPlan plan;
  plan.name("reservation-crash")
      .seed(3)
      .crash(common::HostId(target.host), target.at, 120.0);
  const ReservedRun faulted = run_reserved(std::move(plan));
  ASSERT_TRUE(faulted.ok);

  // The owner survives the crash through ordinary task recovery...
  ASSERT_TRUE(faulted.report.success) << faulted.report.failure_reason;
  EXPECT_GE(faulted.report.failures_survived, 1) << "crash missed the window";

  // ...and the booking was re-placed exactly once per affected window: the
  // detecting Site Manager swapped the dead machine out of the committed
  // window, counted it, traced it, and raised the typed health alert.
  EXPECT_EQ(faulted.windows_displaced, 1u);
  EXPECT_TRUE(faulted.displacement_alert)
      << "reservation-displaced alert did not fire";
  EXPECT_NE(faulted.trace_jsonl.find("reservation.displace"),
            std::string::npos);
}

TEST(ReservationChaos, DisplacedWindowReplaysByteIdentically) {
  const ReservedRun control = run_reserved(chaos::FaultPlan{});
  ASSERT_TRUE(control.ok);
  const CrashTarget target = pick_target(control);

  auto make_plan = [&] {
    chaos::FaultPlan plan;
    plan.name("reservation-replay")
        .seed(3)
        .crash(common::HostId(target.host), target.at, 120.0);
    return plan;
  };
  const ReservedRun first = run_reserved(make_plan());
  const ReservedRun second = run_reserved(make_plan());
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
}

}  // namespace
}  // namespace vdce
