// Differential guard for the advance-reservation plane
// (docs/RESERVATIONS.md): with ZERO reservations booked, every scenario
// must produce a byte-identical trace and bit-identical reports whether the
// window plumbing is live (the default) or compiled out of the decision
// path via RuntimeOptions::legacy_instant_reservations (the pre-reservation
// scheduler, kept as a test-only kill-switch exactly like
// legacy_direct_assign).
//
// Two scenario families, matching the suites that define the repo's
// determinism contract:
//
//   * the 200-case generated scale corpus (docs/SCALING.md),
//   * the 8-tenant concurrent-submission fleet from tests/test_tenancy.cpp
//     (contention, deferral, and co-scheduling included).
//
// The window table is empty in every run, so the instantaneous reservation
// semantics are the degenerate zero-window case — any divergence means a
// reservation code path leaked into the no-reservation world.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scale/generate.hpp"
#include "vdce/environment.hpp"

namespace vdce {
namespace {

// ---- 200-case scale corpus --------------------------------------------------

std::string run_corpus_case(const scale::CorpusCase& c, bool legacy) {
  ScaleSpec spec;
  spec.grid = c.grid;
  spec.options.trace.enabled = true;
  spec.options.runtime.exec_noise_cv = 0.1;  // include the stochastic path
  spec.options.runtime.legacy_instant_reservations = legacy;
  auto env = VdceEnvironment::make_scale_environment(spec);
  EXPECT_TRUE(env.has_value()) << env.error().to_string();
  if (!env) return {};
  auto session =
      (*env)->login(common::SiteId(0), spec.admin_user, spec.admin_password);
  EXPECT_TRUE(session.has_value());
  if (!session) return {};
  afg::Afg graph = scale::make_workload(
      c.workload, "resv-diff-" + std::to_string(c.index));
  RunOptions run;
  run.real_kernels = false;
  auto report = (*env)->run_application(graph, *session, run);
  EXPECT_TRUE(report.has_value()) << "case " << c.index;
  std::string out = (*env)->trace().to_jsonl();
  if (report.has_value()) out += report->describe(graph);
  return out;
}

TEST(ReservationDifferential, ZeroBookingScaleCorpusIsByteIdentical) {
  scale::CorpusSpec spec;  // the full default 200-case corpus
  std::size_t checked = 0;
  for (const scale::CorpusCase& c : scale::make_corpus(spec)) {
    const std::string windowed = run_corpus_case(c, /*legacy=*/false);
    const std::string legacy = run_corpus_case(c, /*legacy=*/true);
    ASSERT_FALSE(windowed.empty()) << "case " << c.index;
    ASSERT_EQ(windowed, legacy)
        << "case " << c.index
        << ": the window plumbing changed a zero-reservation run";
    ++checked;
  }
  EXPECT_EQ(checked, spec.cases);
}

// ---- 8-tenant fleet ---------------------------------------------------------

std::string run_tenant_fleet(bool legacy) {
  scale::TenantSpec tenants;
  tenants.tenants = 8;
  tenants.apps_per_tenant = 2;
  tenants.seed = 7;

  ScaleSpec spec;
  spec.grid.sites = 2;
  spec.grid.hosts_per_site = 6;
  spec.grid.seed = 41;
  spec.options.trace.enabled = true;
  spec.options.runtime.exec_noise_cv = 0.0;
  spec.options.runtime.legacy_instant_reservations = legacy;
  auto env = VdceEnvironment::make_scale_environment(spec);
  EXPECT_TRUE(env.has_value()) << env.error().to_string();
  if (!env) return {};

  const std::vector<scale::TenantArrival> arrivals =
      scale::make_tenant_arrivals(tenants);
  std::vector<Session> sessions;
  for (std::size_t t = 0; t < tenants.tenants; ++t) {
    int priority = 1;
    for (const scale::TenantArrival& a : arrivals) {
      if (a.tenant == t) {
        priority = a.priority;
        break;
      }
    }
    const std::string user = "tenant" + std::to_string(t);
    EXPECT_TRUE((*env)->try_add_user(user, "pw", priority).ok());
    sessions.push_back((*env)->login(common::SiteId(0), user, "pw").value());
  }

  std::vector<AppHandle> handles;
  std::vector<afg::Afg> graphs;
  for (const scale::TenantArrival& a : arrivals) {
    if (a.at > (*env)->now()) (*env)->run_for(a.at - (*env)->now());
    graphs.push_back(scale::make_workload(a.workload, a.app_name));
    RunOptions run;
    run.real_kernels = false;
    auto handle =
        (*env)->submit_application(graphs.back(), sessions[a.tenant], run);
    EXPECT_TRUE(handle.has_value()) << a.app_name;
    if (handle) handles.push_back(*handle);
  }
  EXPECT_TRUE((*env)->drain().ok());

  std::string out = (*env)->trace().to_jsonl();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    auto report = (*env)->report(handles[i]);
    EXPECT_TRUE(report.has_value());
    if (report) out += report->describe(graphs[i]);
  }
  return out;
}

TEST(ReservationDifferential, ZeroBookingEightTenantFleetIsByteIdentical) {
  const std::string windowed = run_tenant_fleet(/*legacy=*/false);
  const std::string legacy = run_tenant_fleet(/*legacy=*/true);
  ASSERT_FALSE(windowed.empty());
  EXPECT_EQ(windowed, legacy);
}

}  // namespace
}  // namespace vdce
