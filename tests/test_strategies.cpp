// Scheduler-strategy plane (docs/SCHEDULING.md): registry units, the
// policy-API fail-fast contract, end-to-end runs of every registered
// strategy on the live runtime, the default-policy differential pinning the
// registry dispatch bit-identical (reports) and byte-identical (traces) to
// the frozen pre-registry path, and a 200-case scale-corpus property run
// per new strategy (max-min, b-level, t-level, work-stealing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "afg/generate.hpp"
#include "db/site_repository.hpp"
#include "predict/model.hpp"
#include "scale/generate.hpp"
#include "sched/baselines.hpp"
#include "sched/list_variants.hpp"
#include "sched/site_scheduler.hpp"
#include "sched/strategy.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

// ---- registry units ---------------------------------------------------------

TEST(StrategyRegistry, ListsEveryBuiltInWithDescriptions) {
  const std::vector<sched::StrategyInfo> all = sched::strategies();
  EXPECT_GE(all.size(), 8u);  // the sensitivity grid needs at least eight
  std::set<std::string> names;
  for (const sched::StrategyInfo& info : all) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate registration: " << info.name;
  }
  for (const char* required :
       {"vdce-level", "vdce-level-paper", "vdce-local", "heft", "min-min",
        "max-min", "min-load", "round-robin", "random", "b-level", "t-level",
        "work-stealing"}) {
    EXPECT_TRUE(names.contains(required)) << required;
    EXPECT_TRUE(sched::strategy_registered(required)) << required;
  }
}

TEST(StrategyRegistry, MakeStrategyHonoursRegisteredNames) {
  for (const sched::StrategyInfo& info : sched::strategies()) {
    sched::SchedulingPolicy policy;
    policy.strategy = info.name;
    auto strategy = sched::make_strategy(policy);
    ASSERT_TRUE(strategy.has_value()) << info.name;
    EXPECT_EQ((*strategy)->name(), info.name);
  }
}

TEST(StrategyRegistry, UnknownNameIsTypedInvalidArgument) {
  sched::SchedulingPolicy policy;
  policy.strategy = "no-such-strategy";
  auto strategy = sched::make_strategy(policy);
  ASSERT_FALSE(strategy.has_value());
  EXPECT_EQ(strategy.error().code, common::ErrorCode::kInvalidArgument);
  // The message names the offender and lists the alternatives.
  EXPECT_NE(strategy.error().message.find("no-such-strategy"),
            std::string::npos);
  EXPECT_NE(strategy.error().message.find("vdce-level"), std::string::npos);

  auto status = sched::validate_policy(policy);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(StrategyRegistry, EmptyStrategyResolvesToVdceDefaultByObjective) {
  sched::SchedulingPolicy policy;
  EXPECT_EQ(sched::resolved_strategy_name(policy), "vdce-level");
  policy.objective = sched::SiteObjective::kPaperObjective;
  EXPECT_EQ(sched::resolved_strategy_name(policy), "vdce-level-paper");
  policy.strategy = "heft";
  EXPECT_EQ(sched::resolved_strategy_name(policy), "heft");
  EXPECT_TRUE(sched::validate_policy(sched::SchedulingPolicy{}).ok());
}

TEST(StrategyRegistry, RegisterRejectsDuplicatesAndAcceptsNewNames) {
  EXPECT_FALSE(sched::register_strategy(
      sched::StrategyInfo{"vdce-level", "imposter"},
      [](const sched::SchedulingPolicy&) {
        return std::unique_ptr<sched::SchedulerStrategy>();
      }));

  struct NullStrategy final : sched::SchedulerStrategy {
    [[nodiscard]] std::string name() const override { return "test-null"; }
    common::Expected<sched::ResourceAllocationTable> assign(
        const afg::Afg&, const sched::SchedulerContext&,
        const std::vector<sched::HostSelectionOutput>&) override {
      return common::Error{common::ErrorCode::kInternal, "null strategy"};
    }
  };
  ASSERT_TRUE(sched::register_strategy(
      sched::StrategyInfo{"test-null", "unit-test stub"},
      [](const sched::SchedulingPolicy&) {
        return std::unique_ptr<sched::SchedulerStrategy>(new NullStrategy());
      }));
  EXPECT_TRUE(sched::strategy_registered("test-null"));
  sched::SchedulingPolicy policy;
  policy.strategy = "test-null";
  auto made = sched::make_strategy(policy);
  ASSERT_TRUE(made.has_value());
  EXPECT_EQ((*made)->name(), "test-null");
  // Double registration of the new name fails too.
  EXPECT_FALSE(sched::register_strategy(
      sched::StrategyInfo{"test-null", "again"},
      [](const sched::SchedulingPolicy&) {
        return std::unique_ptr<sched::SchedulerStrategy>(new NullStrategy());
      }));
}

// ---- deprecated alias -------------------------------------------------------

// The alias is [[deprecated]] now that every in-tree use is migrated; this
// test intentionally keeps exercising it until the alias is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PolicyMigration, SiteSchedulerOptionsIsTheSameType) {
  static_assert(
      std::is_same_v<sched::SiteSchedulerOptions, sched::SchedulingPolicy>,
      "the deprecated alias must map onto SchedulingPolicy");
  sched::SiteSchedulerOptions legacy;
  legacy.objective = sched::SiteObjective::kPaperObjective;
  sched::SchedulingPolicy& modern = legacy;
  EXPECT_EQ(modern.objective, sched::SiteObjective::kPaperObjective);
  EXPECT_TRUE(modern.strategy.empty());
}
#pragma GCC diagnostic pop

// ---- environment fail-fast contract ----------------------------------------

TEST(PolicyFailFast, BringUpRejectsUnknownDefaultStrategy) {
  EnvironmentOptions options;
  options.scheduling.strategy = "definitely-not-registered";
  VdceEnvironment env(make_campus_pair(), options);
  auto st = env.try_bring_up();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_NE(st.error().message.find("definitely-not-registered"),
            std::string::npos);
}

TEST(PolicyFailFast, SubmitAndScheduleRejectUnknownStrategy) {
  VdceEnvironment env(make_campus_pair());
  ASSERT_TRUE(env.try_bring_up().ok());
  env.add_user("u", "p");
  auto session = env.login(common::SiteId(0), "u", "p").value();
  afg::Afg graph = afg::make_chain(3, 500, 1e4);

  RunOptions run;
  run.real_kernels = false;
  run.sched.strategy = "typo-heft";
  auto handle = env.submit_application(graph, session, run);
  ASSERT_FALSE(handle.has_value());
  EXPECT_EQ(handle.error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_NE(handle.error().message.find("typo-heft"), std::string::npos);
  EXPECT_EQ(env.in_flight_submissions(), 0u);  // rejected before admission

  sched::SchedulingPolicy policy;
  policy.strategy = "typo-heft";
  auto table = env.schedule(graph, session, policy);
  ASSERT_FALSE(table.has_value());
  EXPECT_EQ(table.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(PolicyFailFast, RunInheritsEnvironmentDefaultStrategy) {
  EnvironmentOptions options;
  options.scheduling.strategy = "heft";
  VdceEnvironment env(make_campus_pair(), options);
  ASSERT_TRUE(env.try_bring_up().ok());
  env.add_user("u", "p");
  auto session = env.login(common::SiteId(0), "u", "p").value();
  afg::Afg graph = afg::make_chain(4, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_EQ(report->scheduler, "heft");

  // A per-run strategy overrides the environment default.
  run.sched.strategy = "min-min";
  auto report2 = env.run_application(graph, session, run);
  ASSERT_TRUE(report2.has_value()) << report2.error().to_string();
  EXPECT_EQ(report2->scheduler, "min-min");
}

// ---- every strategy runs on the live runtime --------------------------------

TEST(StrategyRuntime, EveryRegisteredStrategyCompletesEndToEnd) {
  for (const sched::StrategyInfo& info : sched::strategies()) {
    if (info.name == "test-null") continue;  // unit-test stub, always errors
    SCOPED_TRACE(info.name);
    VdceEnvironment env(make_campus_pair());
    ASSERT_TRUE(env.try_bring_up().ok());
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();
    common::Rng rng(7);
    afg::LayeredDagSpec spec;
    spec.tasks = 12;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    RunOptions run;
    run.real_kernels = false;
    run.sched.strategy = info.name;
    auto report = env.run_application(graph, session, run);
    ASSERT_TRUE(report.has_value()) << report.error().to_string();
    EXPECT_TRUE(report->success) << report->failure_reason;
    EXPECT_EQ(report->scheduler, info.name);
    EXPECT_EQ(report->outcomes.size(), graph.task_count());
    // The causal plane attributes every strategy's run: the critical path
    // tiles the makespan exactly.
    auto cp = report->critical_path();
    EXPECT_NEAR(cp.phases.total(), report->makespan(), 1e-6);
  }
}

// ---- differential: registry dispatch == frozen pre-registry path ------------

void expect_reports_identical(const runtime::ExecutionReport& a,
                              const runtime::ExecutionReport& b) {
  EXPECT_EQ(a.app.value(), b.app.value());
  EXPECT_EQ(a.app_name, b.app_name);
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.enqueued, b.enqueued);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.exec_started, b.exec_started);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.scheduling_time, b.scheduling_time);
  EXPECT_EQ(a.reschedules, b.reschedules);
  EXPECT_EQ(a.failures_survived, b.failures_survived);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const runtime::TaskOutcome& x = a.outcomes[i];
    const runtime::TaskOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.task, y.task);
    EXPECT_EQ(x.host, y.host);
    EXPECT_EQ(x.site, y.site);
    EXPECT_EQ(x.started, y.started);
    EXPECT_EQ(x.finished, y.finished);
    EXPECT_EQ(x.attempts, y.attempts);
  }
}

TEST(StrategyDifferential, DefaultPolicyMatchesLegacyDispatchBitForBit) {
  // Same deployment, same workloads; the only difference is the test-only
  // legacy_direct_assign flag that bypasses the strategy registry.  Reports
  // must be bit-identical and traces byte-identical — the acceptance
  // criterion for the dispatch refactor.
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    auto build_env = [i](bool legacy) {
      EnvironmentOptions options;
      options.trace.enabled = true;
      options.background_load = i % 2 == 1;  // include the stochastic pieces
      options.runtime.legacy_direct_assign = legacy;
      auto env = std::make_unique<VdceEnvironment>(make_campus_pair(11 + i),
                                                   options);
      EXPECT_TRUE(env->try_bring_up().ok());
      env->add_user("u", "p");
      return env;
    };
    common::Rng rng(100 + i);
    afg::LayeredDagSpec spec;
    spec.tasks = 8 + 4 * (i % 3);
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    RunOptions run;
    run.real_kernels = false;
    // Alternate the objective so both default resolutions are differenced.
    run.sched.objective = i % 3 == 2 ? sched::SiteObjective::kPaperObjective
                                     : sched::SiteObjective::kAvailabilityAware;

    auto legacy_env = build_env(true);
    auto legacy_session =
        legacy_env->login(common::SiteId(0), "u", "p").value();
    auto legacy_report = legacy_env->run_application(graph, legacy_session, run);
    ASSERT_TRUE(legacy_report.has_value())
        << legacy_report.error().to_string();

    auto registry_env = build_env(false);
    auto registry_session =
        registry_env->login(common::SiteId(0), "u", "p").value();
    auto registry_report =
        registry_env->run_application(graph, registry_session, run);
    ASSERT_TRUE(registry_report.has_value())
        << registry_report.error().to_string();

    expect_reports_identical(*legacy_report, *registry_report);
    EXPECT_EQ(legacy_env->trace().to_jsonl(), registry_env->trace().to_jsonl())
        << "traces diverge";
  }
}

// ---- scale-corpus property run per new strategy -----------------------------
//
// Mirrors test_properties.cpp's invariants over the same 200-case corpus,
// once per newly added strategy (the pre-existing ones are covered by the
// scale suite): every task mapped exactly once to valid hosts, dependency-
// and transfer-respecting start times, no double-booking, and the schedule
// length equal to the last completion.

struct CorpusDeployment {
  explicit CorpusDeployment(const scale::GridSpec& spec)
      : topology(scale::make_grid(spec)) {
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = topology.site_count() - 1;
  }

  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  sched::SchedulerContext context;
};

void check_schedule_invariants(const afg::Afg& graph,
                               const net::Topology& topology,
                               const sched::ResourceAllocationTable& table,
                               std::size_t index) {
  SCOPED_TRACE("corpus case " + std::to_string(index));
  constexpr double kEps = 1e-9;

  ASSERT_EQ(table.assignments.size(), graph.task_count());
  std::set<std::uint32_t> seen;
  for (const sched::Assignment& a : table.assignments) {
    EXPECT_TRUE(seen.insert(a.task.value()).second)
        << "task " << a.task.value() << " mapped twice";
    const afg::TaskNode& node = graph.task(a.task);
    const std::size_t need =
        node.props.mode == afg::ComputationMode::kParallel
            ? static_cast<std::size_t>(node.props.num_nodes)
            : std::size_t{1};
    ASSERT_EQ(a.hosts.size(), need) << "task " << a.task.value();
    for (common::HostId h : a.hosts) {
      ASSERT_LT(h.value(), topology.host_count());
      const net::Host& host = topology.host(h);
      EXPECT_EQ(host.site, a.site) << "task " << a.task.value();
      EXPECT_TRUE(host.state.up);
    }
    EXPECT_GE(a.est_start, -kEps);
    EXPECT_GE(a.est_finish, a.est_start - kEps);
  }
  EXPECT_EQ(seen.size(), graph.task_count());

  for (const afg::Edge& e : graph.edges()) {
    const sched::Assignment parent = table.find(e.from).value();
    const sched::Assignment child = table.find(e.to).value();
    const double transfer = topology.transfer_time(
        parent.primary_host(), child.primary_host(), graph.edge_bytes(e));
    EXPECT_GE(child.est_start + kEps, parent.est_finish + transfer)
        << "edge " << e.from.value() << " -> " << e.to.value();
  }

  std::map<common::HostId, std::vector<std::pair<double, double>>> busy;
  for (const sched::Assignment& a : table.assignments) {
    for (common::HostId h : a.hosts) {
      busy[h].emplace_back(a.est_start, a.est_finish);
    }
  }
  for (auto& [host, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first + kEps, intervals[i - 1].second)
          << "host " << host.value() << " double-booked";
    }
  }

  double last = 0.0;
  for (const sched::Assignment& a : table.assignments) {
    last = std::max(last, a.est_finish);
  }
  EXPECT_DOUBLE_EQ(table.schedule_length, last);
}

class NewStrategyCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(NewStrategyCorpus, InvariantsHoldAcrossTwoHundredCases) {
  const std::string name = GetParam();
  scale::CorpusSpec spec;  // 200 cases
  const std::vector<scale::CorpusCase> corpus = scale::make_corpus(spec);
  ASSERT_GE(corpus.size(), 200u);
  for (const scale::CorpusCase& c : corpus) {
    CorpusDeployment dep(c.grid);
    afg::Afg graph =
        scale::make_workload(c.workload, "corpus-" + std::to_string(c.index));
    ASSERT_TRUE(graph.validate().ok()) << "case " << c.index;
    auto scheduler = sched::make_scheduler(name);
    ASSERT_TRUE(scheduler.has_value());
    auto table = (*scheduler)->schedule(graph, dep.context);
    ASSERT_TRUE(table.has_value())
        << "case " << c.index << ": " << table.error().to_string();
    EXPECT_EQ(table->scheduler_name, name);
    check_schedule_invariants(graph, dep.topology, *table, c.index);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNewStrategies, NewStrategyCorpus,
                         ::testing::Values("max-min", "b-level", "t-level",
                                           "work-stealing"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// The strategy object over the same outputs must equal the direct
// assignment call — the offline face of the dispatch differential.
TEST(StrategyDifferential, VdceStrategyAssignEqualsDirectAssignment) {
  scale::CorpusSpec spec;
  spec.cases = 40;
  const std::vector<scale::CorpusCase> corpus = scale::make_corpus(spec);
  for (const scale::CorpusCase& c : corpus) {
    SCOPED_TRACE("case " + std::to_string(c.index));
    CorpusDeployment dep(c.grid);
    afg::Afg graph =
        scale::make_workload(c.workload, "corpus-" + std::to_string(c.index));

    sched::SchedulingPolicy policy;
    policy.objective = c.index % 2 == 0
                           ? sched::SiteObjective::kAvailabilityAware
                           : sched::SiteObjective::kPaperObjective;
    const std::string expected_name = sched::resolved_strategy_name(policy);

    const auto sites = sched::candidate_site_set(dep.context, policy);
    std::vector<sched::HostSelectionOutput> outputs;
    for (common::SiteId s : sites) {
      auto out = sched::HostSelectionAlgorithm::run(
          graph, s, dep.context.repo(s), *dep.context.predictor);
      ASSERT_TRUE(out.has_value());
      outputs.push_back(std::move(*out));
    }

    auto direct = sched::assign_with_outputs(graph, dep.context, outputs,
                                             policy, expected_name);
    ASSERT_TRUE(direct.has_value()) << direct.error().to_string();

    auto strategy = sched::make_strategy(policy);
    ASSERT_TRUE(strategy.has_value());
    auto via_registry = (*strategy)->assign(graph, dep.context, outputs);
    ASSERT_TRUE(via_registry.has_value()) << via_registry.error().to_string();

    EXPECT_EQ(via_registry->scheduler_name, direct.value().scheduler_name);
    EXPECT_EQ(via_registry->scheduler_name, expected_name);
    EXPECT_DOUBLE_EQ(via_registry->schedule_length, direct->schedule_length);
    ASSERT_EQ(via_registry->assignments.size(), direct->assignments.size());
    for (std::size_t i = 0; i < direct->assignments.size(); ++i) {
      const sched::Assignment& x = direct->assignments[i];
      const sched::Assignment& y = via_registry->assignments[i];
      EXPECT_EQ(x.task, y.task);
      EXPECT_EQ(x.site, y.site);
      EXPECT_EQ(x.hosts, y.hosts);
      EXPECT_DOUBLE_EQ(x.est_start, y.est_start);
      EXPECT_DOUBLE_EQ(x.est_finish, y.est_finish);
    }
  }
}

}  // namespace
}  // namespace vdce
