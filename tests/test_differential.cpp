// Differential tests for the scheduler hot-path optimisation.
//
// The optimized VdceSiteScheduler (memoized transfer/data-ready caches,
// cached ranked host lists, incremental ready heap) must produce
// bit-identical resource allocation tables to sched::reference — the frozen
// pre-optimization implementation — on every corpus case and under every
// objective × priority combination.  Any divergence, even in the last ulp
// of a start time, is a bug in the caches.
//
// Also: ranking sanity on the Fig-2/Fig-3 style scenarios — HEFT stays
// competitive with the VDCE level scheduler, and both beat random
// placement on average over generated grids.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/site_repository.hpp"
#include "predict/model.hpp"
#include "scale/generate.hpp"
#include "sched/baselines.hpp"
#include "sched/heft.hpp"
#include "sched/reference.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {
namespace {

struct Deployment {
  explicit Deployment(const scale::GridSpec& spec)
      : topology(scale::make_grid(spec)) {
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = topology.site_count() - 1;
  }

  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  SchedulerContext context;
};

/// Exact comparison — no epsilon anywhere.  The caches are only admissible
/// because they provably change nothing.
void expect_bit_identical(const ResourceAllocationTable& optimized,
                          const ResourceAllocationTable& naive,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(naive.scheduler_name, optimized.scheduler_name + "-naive");
  EXPECT_EQ(optimized.app_name, naive.app_name);
  ASSERT_EQ(optimized.assignments.size(), naive.assignments.size());
  EXPECT_EQ(optimized.schedule_length, naive.schedule_length);
  for (std::size_t i = 0; i < optimized.assignments.size(); ++i) {
    const Assignment& a = optimized.assignments[i];
    const Assignment& b = naive.assignments[i];
    EXPECT_EQ(a.task, b.task) << "row " << i;
    EXPECT_EQ(a.site, b.site) << "row " << i;
    EXPECT_EQ(a.hosts, b.hosts) << "row " << i;
    EXPECT_EQ(a.predicted_time, b.predicted_time) << "row " << i;
    EXPECT_EQ(a.est_start, b.est_start) << "row " << i;
    EXPECT_EQ(a.est_finish, b.est_finish) << "row " << i;
  }
}

TEST(Differential, OptimizedMatchesNaiveAcrossCorpus) {
  scale::CorpusSpec spec;
  spec.cases = 72;  // 72 cases × (2 objectives × 3 priorities) = 432 diffs
  spec.seed = 977;
  for (const scale::CorpusCase& c : scale::make_corpus(spec)) {
    Deployment dep(c.grid);
    afg::Afg graph = scale::make_workload(
        c.workload, "diff-" + std::to_string(c.index));
    for (SiteObjective objective :
         {SiteObjective::kAvailabilityAware, SiteObjective::kPaperObjective}) {
      for (PriorityMode priority :
           {PriorityMode::kPaperLevels, PriorityMode::kCommLevels,
            PriorityMode::kFifo}) {
        SchedulingPolicy options;
        options.objective = objective;
        options.priority = priority;
        VdceSiteScheduler optimized(options);
        auto fast = optimized.schedule(graph, dep.context);
        auto slow = reference::schedule_naive(graph, dep.context, options);
        ASSERT_EQ(fast.has_value(), slow.has_value()) << "case " << c.index;
        if (!fast) continue;  // both infeasible the same way is fine
        expect_bit_identical(
            *fast, *slow,
            "case " + std::to_string(c.index) + " objective " +
                std::to_string(static_cast<int>(objective)) + " priority " +
                std::to_string(static_cast<int>(priority)));
      }
    }
  }
}

TEST(Differential, StalenessPenaltyPathAlsoMatches) {
  // The staleness multiplier runs inside the availability-aware host loop —
  // exercise it explicitly since the default corpus leaves it off.
  scale::GridSpec grid;
  grid.sites = 4;
  grid.hosts_per_site = 6;
  grid.seed = 31;
  Deployment dep(grid);
  dep.context.now = 1000.0;  // every sample is now stale
  scale::WorkloadSpec w;
  w.shape = scale::WorkloadShape::kRandomDag;
  w.tasks = 40;
  w.seed = 8;
  afg::Afg graph = scale::make_workload(w, "stale-diff");
  SchedulingPolicy options;
  options.stale_after = 10.0;
  VdceSiteScheduler optimized(options);
  auto fast = optimized.schedule(graph, dep.context);
  auto slow = reference::schedule_naive(graph, dep.context, options);
  ASSERT_TRUE(fast.has_value() && slow.has_value());
  expect_bit_identical(*fast, *slow, "stale");
}

// ---- ranking sanity on Fig-2/Fig-3 style scenarios -------------------------------

TEST(Ranking, VdceBeatsRandomOnGeneratedGrids) {
  double vdce_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scale::GridSpec grid;
    grid.sites = 4;
    grid.hosts_per_site = 8;
    grid.seed = seed;
    Deployment dep(grid);
    scale::WorkloadSpec w;
    w.shape = scale::WorkloadShape::kLayered;
    w.tasks = 48;
    w.width = 8;
    w.seed = seed;
    afg::Afg graph = scale::make_workload(w, "rank");
    VdceSiteScheduler vdce;
    RandomScheduler random(seed);
    auto t1 = vdce.schedule(graph, dep.context);
    auto t2 = random.schedule(graph, dep.context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    vdce_total += t1->schedule_length;
    random_total += t2->schedule_length;
  }
  EXPECT_LT(vdce_total, random_total);
}

TEST(Ranking, HeftCompetitiveWithVdceOnGeneratedGrids) {
  double heft_total = 0.0;
  double vdce_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scale::GridSpec grid;
    grid.sites = 3;
    grid.hosts_per_site = 6;
    grid.seed = 100 + seed;
    Deployment dep(grid);
    scale::WorkloadSpec w;
    w.shape = scale::WorkloadShape::kRandomDag;
    w.tasks = 40;
    w.seed = 200 + seed;
    afg::Afg graph = scale::make_workload(w, "rank-heft");
    HeftScheduler heft;
    VdceSiteScheduler vdce;
    auto t1 = heft.schedule(graph, dep.context);
    auto t2 = vdce.schedule(graph, dep.context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    heft_total += t1->schedule_length;
    vdce_total += t2->schedule_length;
  }
  EXPECT_LT(heft_total, 1.15 * vdce_total);
}

}  // namespace
}  // namespace vdce::sched
