// Differential tests for the scheduler hot-path optimisation.
//
// The optimized VdceSiteScheduler (memoized transfer/data-ready caches,
// cached ranked host lists, incremental ready heap) must produce
// bit-identical resource allocation tables to sched::reference — the frozen
// pre-optimization implementation — on every corpus case and under every
// objective × priority combination.  Any divergence, even in the last ulp
// of a start time, is a bug in the caches.
//
// Also: ranking sanity on the Fig-2/Fig-3 style scenarios — HEFT stays
// competitive with the VDCE level scheduler, and both beat random
// placement on average over generated grids.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "afg/generate.hpp"
#include "db/site_repository.hpp"
#include "econ/econ.hpp"
#include "predict/model.hpp"
#include "scale/generate.hpp"
#include "sched/baselines.hpp"
#include "sched/heft.hpp"
#include "sched/host_selection.hpp"
#include "sched/reference.hpp"
#include "sched/site_scheduler.hpp"
#include "sched/strategy.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce::sched {
namespace {

struct Deployment {
  explicit Deployment(const scale::GridSpec& spec)
      : topology(scale::make_grid(spec)) {
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = topology.site_count() - 1;
  }

  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  SchedulerContext context;
};

/// Exact comparison — no epsilon anywhere.  The caches are only admissible
/// because they provably change nothing.
void expect_bit_identical(const ResourceAllocationTable& optimized,
                          const ResourceAllocationTable& naive,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(naive.scheduler_name, optimized.scheduler_name + "-naive");
  EXPECT_EQ(optimized.app_name, naive.app_name);
  ASSERT_EQ(optimized.assignments.size(), naive.assignments.size());
  EXPECT_EQ(optimized.schedule_length, naive.schedule_length);
  for (std::size_t i = 0; i < optimized.assignments.size(); ++i) {
    const Assignment& a = optimized.assignments[i];
    const Assignment& b = naive.assignments[i];
    EXPECT_EQ(a.task, b.task) << "row " << i;
    EXPECT_EQ(a.site, b.site) << "row " << i;
    EXPECT_EQ(a.hosts, b.hosts) << "row " << i;
    EXPECT_EQ(a.predicted_time, b.predicted_time) << "row " << i;
    EXPECT_EQ(a.est_start, b.est_start) << "row " << i;
    EXPECT_EQ(a.est_finish, b.est_finish) << "row " << i;
  }
}

TEST(Differential, OptimizedMatchesNaiveAcrossCorpus) {
  scale::CorpusSpec spec;
  spec.cases = 72;  // 72 cases × (2 objectives × 3 priorities) = 432 diffs
  spec.seed = 977;
  for (const scale::CorpusCase& c : scale::make_corpus(spec)) {
    Deployment dep(c.grid);
    afg::Afg graph = scale::make_workload(
        c.workload, "diff-" + std::to_string(c.index));
    for (SiteObjective objective :
         {SiteObjective::kAvailabilityAware, SiteObjective::kPaperObjective}) {
      for (PriorityMode priority :
           {PriorityMode::kPaperLevels, PriorityMode::kCommLevels,
            PriorityMode::kFifo}) {
        SchedulingPolicy options;
        options.objective = objective;
        options.priority = priority;
        VdceSiteScheduler optimized(options);
        auto fast = optimized.schedule(graph, dep.context);
        auto slow = reference::schedule_naive(graph, dep.context, options);
        ASSERT_EQ(fast.has_value(), slow.has_value()) << "case " << c.index;
        if (!fast) continue;  // both infeasible the same way is fine
        expect_bit_identical(
            *fast, *slow,
            "case " + std::to_string(c.index) + " objective " +
                std::to_string(static_cast<int>(objective)) + " priority " +
                std::to_string(static_cast<int>(priority)));
      }
    }
  }
}

TEST(Differential, StalenessPenaltyPathAlsoMatches) {
  // The staleness multiplier runs inside the availability-aware host loop —
  // exercise it explicitly since the default corpus leaves it off.
  scale::GridSpec grid;
  grid.sites = 4;
  grid.hosts_per_site = 6;
  grid.seed = 31;
  Deployment dep(grid);
  dep.context.now = 1000.0;  // every sample is now stale
  scale::WorkloadSpec w;
  w.shape = scale::WorkloadShape::kRandomDag;
  w.tasks = 40;
  w.seed = 8;
  afg::Afg graph = scale::make_workload(w, "stale-diff");
  SchedulingPolicy options;
  options.stale_after = 10.0;
  VdceSiteScheduler optimized(options);
  auto fast = optimized.schedule(graph, dep.context);
  auto slow = reference::schedule_naive(graph, dep.context, options);
  ASSERT_TRUE(fast.has_value() && slow.has_value());
  expect_bit_identical(*fast, *slow, "stale");
}

// ---- economy differential: unconstrained DBC == default path ---------------------
//
// docs/ECONOMY.md promises the economy is invisible until asked for.  Two
// guarantees, both exact:
//   1. With prices in the context but no deadline/budget in the policy, the
//      DBC strategies delegate to the default VDCE assignment phase — the
//      table is field-for-field identical to `vdce-level` under the same
//      objective × priority, across the same 72-case corpus the cache
//      differential uses (only the attribution name may differ).
//   2. End to end, a default-options environment (economy plane enabled but
//      unconstrained) produces byte-identical reports and traces to one
//      running under the `legacy_no_economy` kill-switch.

/// Exact table comparison, scheduler_name excepted (DBC tables carry their
/// own attribution by design).
void expect_identical_but_name(const ResourceAllocationTable& a,
                               const ResourceAllocationTable& b,
                               const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.app_name, b.app_name);
  EXPECT_EQ(a.schedule_length, b.schedule_length);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    const Assignment& x = a.assignments[i];
    const Assignment& y = b.assignments[i];
    EXPECT_EQ(x.task, y.task) << "row " << i;
    EXPECT_EQ(x.site, y.site) << "row " << i;
    EXPECT_EQ(x.hosts, y.hosts) << "row " << i;
    EXPECT_EQ(x.predicted_time, y.predicted_time) << "row " << i;
    EXPECT_EQ(x.est_start, y.est_start) << "row " << i;
    EXPECT_EQ(x.est_finish, y.est_finish) << "row " << i;
  }
}

TEST(EconDifferential, UnconstrainedDbcMatchesDefaultAcrossCorpus) {
  scale::CorpusSpec spec;
  spec.cases = 72;  // same grid as the cache differential: 432 combinations
  spec.seed = 977;
  const econ::CostModel prices;
  for (const scale::CorpusCase& c : scale::make_corpus(spec)) {
    Deployment dep(c.grid);
    dep.context.prices = &prices;  // priced context, unconstrained policy
    afg::Afg graph = scale::make_workload(
        c.workload, "econ-diff-" + std::to_string(c.index));

    // Host selection is policy-independent: gather the bids once per case.
    std::vector<HostSelectionOutput> outputs;
    for (const auto& repo : dep.repos) {
      auto out = HostSelectionAlgorithm::run(graph, repo->site(), *repo,
                                             dep.predictor);
      if (out) outputs.push_back(std::move(*out));
    }

    for (SiteObjective objective :
         {SiteObjective::kAvailabilityAware, SiteObjective::kPaperObjective}) {
      for (PriorityMode priority :
           {PriorityMode::kPaperLevels, PriorityMode::kCommLevels,
            PriorityMode::kFifo}) {
        SchedulingPolicy base;
        base.objective = objective;
        base.priority = priority;
        base.strategy = objective == SiteObjective::kPaperObjective
                            ? "vdce-level-paper"
                            : "vdce-level";
        auto reference_table =
            make_strategy(base).value()->assign(graph, dep.context, outputs);
        for (const char* name : {"dbc-cost", "dbc-time"}) {
          SchedulingPolicy dbc = base;
          dbc.strategy = name;  // deadline/budget stay 0: must delegate
          auto dbc_table =
              make_strategy(dbc).value()->assign(graph, dep.context, outputs);
          ASSERT_EQ(reference_table.has_value(), dbc_table.has_value())
              << "case " << c.index << " strategy " << name;
          if (!reference_table) continue;
          EXPECT_EQ(dbc_table->scheduler_name, name);
          expect_identical_but_name(
              *reference_table, *dbc_table,
              "case " + std::to_string(c.index) + " strategy " + name +
                  " objective " +
                  std::to_string(static_cast<int>(objective)) + " priority " +
                  std::to_string(static_cast<int>(priority)));
        }
      }
    }
  }
}

TEST(EconDifferential, KillSwitchRunsAreByteIdentical) {
  // Same deployment, same workloads; the only difference is the
  // legacy_no_economy kill-switch.  Unconstrained runs must not change by a
  // byte when the economy plane is live — reports bit-identical, traces
  // byte-identical.
  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    auto run_once = [i](bool legacy) {
      EnvironmentOptions options;
      options.trace.enabled = true;
      options.background_load = i % 2 == 1;
      options.runtime.legacy_no_economy = legacy;
      auto env = std::make_unique<VdceEnvironment>(make_campus_pair(23 + i),
                                                   options);
      EXPECT_TRUE(env->try_bring_up().ok());
      env->add_user("u", "p");
      auto session = env->login(common::SiteId(0), "u", "p").value();
      common::Rng rng(300 + i);
      afg::LayeredDagSpec spec;
      spec.tasks = 14 + i * 4;
      spec.width = 4;
      afg::Afg graph = afg::make_layered_dag(spec, rng);
      RunOptions run;
      run.real_kernels = false;
      auto report = env->run_application(graph, session, run);
      EXPECT_TRUE(report.has_value());
      std::string out = env->trace().to_jsonl();
      if (report.has_value()) {
        out += report->describe(graph);
        // Unconstrained runs must carry no quote on either side.
        EXPECT_EQ(report->spend(), 0.0);
        EXPECT_EQ(report->budget, 0.0);
        EXPECT_EQ(report->spend_parts.compute, 0.0);
        EXPECT_EQ(report->spend_parts.transfer, 0.0);
      }
      return out;
    };
    const std::string economy_on = run_once(false);
    const std::string economy_off = run_once(true);
    EXPECT_EQ(economy_on, economy_off) << "kill-switch diverges";
  }
}

// ---- ranking sanity on Fig-2/Fig-3 style scenarios -------------------------------

TEST(Ranking, VdceBeatsRandomOnGeneratedGrids) {
  double vdce_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scale::GridSpec grid;
    grid.sites = 4;
    grid.hosts_per_site = 8;
    grid.seed = seed;
    Deployment dep(grid);
    scale::WorkloadSpec w;
    w.shape = scale::WorkloadShape::kLayered;
    w.tasks = 48;
    w.width = 8;
    w.seed = seed;
    afg::Afg graph = scale::make_workload(w, "rank");
    VdceSiteScheduler vdce;
    RandomScheduler random(seed);
    auto t1 = vdce.schedule(graph, dep.context);
    auto t2 = random.schedule(graph, dep.context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    vdce_total += t1->schedule_length;
    random_total += t2->schedule_length;
  }
  EXPECT_LT(vdce_total, random_total);
}

TEST(Ranking, HeftCompetitiveWithVdceOnGeneratedGrids) {
  double heft_total = 0.0;
  double vdce_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scale::GridSpec grid;
    grid.sites = 3;
    grid.hosts_per_site = 6;
    grid.seed = 100 + seed;
    Deployment dep(grid);
    scale::WorkloadSpec w;
    w.shape = scale::WorkloadShape::kRandomDag;
    w.tasks = 40;
    w.seed = 200 + seed;
    afg::Afg graph = scale::make_workload(w, "rank-heft");
    HeftScheduler heft;
    VdceSiteScheduler vdce;
    auto t1 = heft.schedule(graph, dep.context);
    auto t2 = vdce.schedule(graph, dep.context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    heft_total += t1->schedule_length;
    vdce_total += t2->schedule_length;
  }
  EXPECT_LT(heft_total, 1.15 * vdce_total);
}

}  // namespace
}  // namespace vdce::sched
