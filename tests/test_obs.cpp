// Unit + integration tests for the observability layer: metric semantics,
// span recording, export determinism, and the VdceEnvironment surface.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/obs.hpp"
#include "vdce/vdce.hpp"

namespace vdce {
namespace {

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, CounterSemantics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("monitor.samples");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("monitor.samples"), 42u);
  EXPECT_EQ(registry.counter_value("never.created"), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSemantics) {
  obs::MetricsRegistry registry;
  registry.gauge("sim.now").set(12.5);
  registry.gauge("sim.now").add(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("sim.now"), 13.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("absent"), 0.0);
}

TEST(Metrics, HistogramSemantics) {
  obs::MetricsRegistry registry;
  common::Stats& h = registry.histogram("exec.task_seconds");
  h.add(1.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  ASSERT_NE(registry.find_histogram("exec.task_seconds"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
}

TEST(Metrics, ResetKeepsCachedHandlesValid) {
  obs::MetricsRegistry registry;
  obs::Counter* cached = &registry.counter("fabric.sends");
  cached->add(7);
  registry.reset();
  EXPECT_EQ(cached->value(), 0u);
  cached->add(1);  // handle still points into the registry
  EXPECT_EQ(registry.counter_value("fabric.sends"), 1u);
}

TEST(Metrics, JsonlIsNameOrdered) {
  obs::MetricsRegistry registry;
  registry.counter("zz.last").add(1);
  registry.counter("aa.first").add(2);
  std::string jsonl = registry.to_jsonl();
  auto first = jsonl.find("aa.first");
  auto last = jsonl.find("zz.last");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
}

TEST(Metrics, EmptyHistogramExportsNullQuantilesNeverNaN) {
  obs::MetricsRegistry registry;
  (void)registry.histogram("exec.task_seconds");  // touched but never fed
  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(
      jsonl.find("\"count\":0,\"mean\":null,\"min\":null,\"p50\":null,"
                 "\"p90\":null,\"p99\":null,\"p999\":null,\"max\":null"),
      std::string::npos)
      << jsonl;
  EXPECT_EQ(jsonl.find("nan"), std::string::npos);
  EXPECT_EQ(jsonl.find("inf"), std::string::npos);
  const std::string om = registry.to_openmetrics();
  EXPECT_EQ(om.find("nan"), std::string::npos);
  EXPECT_EQ(om.find("inf"), std::string::npos);
  // _count/_sum are still present for the empty summary; quantiles are not.
  EXPECT_NE(om.find("exec_task_seconds_count 0"), std::string::npos) << om;
  EXPECT_EQ(om.find("quantile"), std::string::npos);
}

TEST(Metrics, HistogramJsonlCarriesTailQuantiles) {
  obs::MetricsRegistry registry;
  common::Stats& h = registry.histogram("exec.task_seconds");
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(jsonl.find("\"p90\":900"), std::string::npos) << jsonl;
  // Nearest-rank on 1..1000: rank ceil(0.999 * 1000) lands on the last
  // element (the 0.999 literal rounds up in binary).
  EXPECT_NE(jsonl.find("\"p999\":1000"), std::string::npos) << jsonl;
}

TEST(Metrics, OpenMetricsExposition) {
  obs::MetricsRegistry registry;
  registry.counter("fabric.sends").add(3);
  registry.gauge("sim.now").set(1.5);
  registry.histogram("exec.task_seconds").add(2.0);
  const std::string om = registry.to_openmetrics();
  EXPECT_NE(om.find("# TYPE fabric_sends counter\nfabric_sends_total 3\n"),
            std::string::npos)
      << om;
  EXPECT_NE(om.find("sim_now 1.5"), std::string::npos);
  EXPECT_NE(om.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(om.find("exec_task_seconds_count 1"), std::string::npos);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
}

TEST(Stats, EmptyQueriesReturnZeroAndReserveDoesNotCount) {
  common::Stats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  s.reserve(128);
  EXPECT_EQ(s.count(), 0u);
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 4.0);
}

// ---- trace sink ------------------------------------------------------------

TEST(Trace, DisabledSinkRecordsNothing) {
  obs::TraceSink sink;  // default: disabled
  sink.span("exec", "exec.task", 1.0, 2.0, 3);
  sink.instant("sched", "sched.assign", 1.0, obs::kControlTrack);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(Trace, SpanAndInstantRecording) {
  obs::TraceSink sink(obs::TraceOptions{.enabled = true});
  sink.span("exec", "exec.task", 1.0, 2.5, 3,
            {obs::arg("task", "combine"), obs::arg("app", std::uint32_t{1})});
  sink.instant("monitor", "monitor.echo_round", 4.0, 0);
  ASSERT_EQ(sink.size(), 2u);
  const obs::TraceEvent& span = sink.events()[0];
  EXPECT_EQ(span.phase, obs::TracePhase::kSpan);
  EXPECT_DOUBLE_EQ(span.start, 1.0);
  EXPECT_DOUBLE_EQ(span.duration, 1.5);
  EXPECT_EQ(span.track, 3u);
  EXPECT_EQ(sink.count("exec."), 1u);
  EXPECT_EQ(sink.count("monitor."), 1u);
  EXPECT_EQ(sink.count("fabric."), 0u);
}

TEST(Trace, CapacityCapCountsDrops) {
  obs::TraceSink sink(obs::TraceOptions{.enabled = true, .capacity = 2});
  for (int i = 0; i < 5; ++i) {
    sink.instant("monitor", "monitor.sample", static_cast<double>(i), 0);
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
}

// Minimal JSON well-formedness checker (objects/arrays/strings/numbers/
// literals), enough to prove the Chrome exporter emits parseable JSON.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeTraceIsValidJson) {
  obs::TraceSink sink(obs::TraceOptions{.enabled = true});
  sink.span("exec", "needs \"escaping\"\n", 0.5, 1.0, 2,
            {obs::arg("note", "a\\b\tc"), obs::arg("n", 1.25)});
  sink.instant("sched", "sched.assign", 2.0, obs::kControlTrack);
  std::string chrome = sink.to_chrome_trace();
  EXPECT_TRUE(JsonScanner(chrome).valid()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
}

// ---- the environment surface ----------------------------------------------

afg::Afg diamond_graph() {
  editor::AppBuilder app("obs-diamond");
  auto left = app.task("left", "synthetic.w800").output_data(2e5);
  auto right = app.task("right", "synthetic.w600").output_data(2e5);
  auto combine = app.task("combine", "synthetic.w400").output_data(5e4);
  auto finish = app.task("finish", "synthetic.w200");
  app.link(left, combine).value();
  app.link(right, combine).value();
  app.link(combine, finish).value();
  return app.build().value();
}

common::Expected<runtime::ExecutionReport> run_instrumented(
    VdceEnvironment& env) {
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();
  RunOptions run;
  run.real_kernels = false;
  return env.run_application(diamond_graph(), session, run);
}

TEST(Environment, InstrumentedRunProducesSpansAndMeters) {
  EnvironmentOptions options;
  options.metrics.enabled = true;
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(), options);
  auto report = run_instrumented(env);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_TRUE(report->success);

  // One execution span per task, on the host that ran it.
  EXPECT_EQ(env.trace().count("exec.task"), 4u);
  EXPECT_GE(env.trace().count("fabric.transfer"), 4u);
  EXPECT_EQ(env.trace().count("sched.assign"), 1u);
  EXPECT_EQ(env.trace().count("sched.bid_gather"), 1u);
  EXPECT_GE(env.trace().count("sched.host_selection"), 1u);
  EXPECT_EQ(env.trace().count("app.run"), 1u);

  obs::MetricsRegistry& m = env.metrics();
  EXPECT_EQ(m.counter_value("exec.tasks_completed"), 4u);
  EXPECT_EQ(m.counter_value("app.completed"), 1u);
  EXPECT_EQ(m.counter_value("sched.requests"), 1u);
  ASSERT_NE(m.find_histogram("exec.task_seconds"), nullptr);
  EXPECT_EQ(m.find_histogram("exec.task_seconds")->count(), 4u);
  EXPECT_GT(m.gauge_value("sim.events_fired"), 0.0);

  // The phase breakdown is internally consistent.
  auto phases = report->breakdown();
  EXPECT_GT(phases.scheduling, 0.0);
  EXPECT_GT(phases.setup, 0.0);
  EXPECT_GT(phases.execution, 0.0);
  EXPECT_GT(phases.task_busy, 0.0);
  EXPECT_DOUBLE_EQ(phases.execution, report->makespan());
  EXPECT_DOUBLE_EQ(phases.total(),
                   phases.scheduling + phases.setup + phases.execution);

  // The full environment trace still exports as valid Chrome JSON.
  EXPECT_TRUE(JsonScanner(env.trace().to_chrome_trace()).valid());
}

TEST(Environment, DisabledObservabilityStaysEmpty) {
  VdceEnvironment env(make_campus_pair());  // defaults: obs off
  auto report = run_instrumented(env);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_EQ(env.trace().size(), 0u);
  EXPECT_EQ(env.observability().metrics().counter_value("exec.tasks_completed"),
            0u);
}

TEST(Environment, IdenticalSeedsExportByteIdenticalJsonl) {
  std::string exports[2];
  std::string meters[2];
  for (int i = 0; i < 2; ++i) {
    EnvironmentOptions options;
    options.metrics.enabled = true;
    options.trace.enabled = true;
    VdceEnvironment env(make_campus_pair(), options);
    auto report = run_instrumented(env);
    ASSERT_TRUE(report.has_value());
    exports[i] = env.trace().to_jsonl();
    meters[i] = env.metrics().to_jsonl();
  }
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(meters[0], meters[1]);
}

TEST(Environment, CheckedAccessorsReportMisuse) {
  VdceEnvironment env(make_campus_pair());
  EXPECT_FALSE(env.try_repo(common::SiteId(0)).has_value());  // not up yet
  env.bring_up();
  EXPECT_TRUE(env.try_repo(common::SiteId(0)).has_value());
  EXPECT_TRUE(env.try_site_manager(common::SiteId(1)).has_value());
  EXPECT_FALSE(env.try_repo(common::SiteId(99)).has_value());
  EXPECT_FALSE(env.try_site_manager(common::SiteId(99)).has_value());

  EXPECT_EQ(env.sites().size(), 2u);
  EXPECT_FALSE(env.hosts().empty());
  EXPECT_EQ(env.hosts().size(), env.topology().host_count());
}

}  // namespace
}  // namespace vdce
