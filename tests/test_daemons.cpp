// White-box tests for the runtime daemons, wired by hand (no environment
// façade): the Data Manager's channel/input accounting and execution queue,
// and the Group Manager's filter and echo state machines.
#include <gtest/gtest.h>

#include <memory>

#include "afg/generate.hpp"
#include "db/site_repository.hpp"
#include "runtime/data_manager.hpp"
#include "runtime/group_manager.hpp"
#include "runtime/protocol.hpp"
#include "sched/support.hpp"
#include "tasklib/registry.hpp"
#include "vdce/testbed.hpp"

namespace vdce::runtime {
namespace {

/// Minimal hand-built runtime: topology, fabric, repositories, core — but
/// no host agents; tests bind handlers themselves.
struct DaemonFixture : ::testing::Test {
  DaemonFixture()
      : topology(make_campus_pair(3)), fabric(engine, topology) {
    tasklib::register_standard_libraries(registry);
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      registry.seed_database(repo->tasks());
      repos.push_back(std::move(repo));
    }
    std::vector<db::SiteRepository*> repo_ptrs;
    for (auto& r : repos) repo_ptrs.push_back(r.get());
    RuntimeOptions options;
    options.exec_noise_cv = 0.0;
    core = std::make_unique<RuntimeCore>(engine, fabric, topology,
                                         std::move(repo_ptrs), options);
  }

  common::HostId host(std::size_t site, std::size_t index) {
    return topology.site(common::SiteId(static_cast<std::uint32_t>(site)))
        .hosts[index];
  }

  /// Build a plan for a graph where every task is assigned round-robin to
  /// the given hosts.
  PlanPtr make_plan(const afg::Afg& graph,
                    const std::vector<common::HostId>& hosts,
                    common::HostId origin) {
    auto plan = std::make_shared<ExecutionPlan>();
    plan->app = common::AppId(1);
    plan->origin = origin;
    plan->graph = graph;
    plan->kernels.resize(graph.task_count());
    for (const afg::TaskNode& node : graph.tasks()) {
      plan->perf.push_back(
          *sched::resolve_perf(node, repos[0]->tasks()));
      common::HostId h = hosts[node.id.value() % hosts.size()];
      sched::Assignment a;
      a.task = node.id;
      a.site = topology.host(h).site;
      a.hosts = {h};
      a.predicted_time = 1.0;
      plan->rat.assignments.push_back(std::move(a));
    }
    return plan;
  }

  sim::Engine engine;
  net::Topology topology;
  net::Fabric fabric;
  tasklib::TaskRegistry registry;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  std::unique_ptr<RuntimeCore> core;
};

// ---- DataManager --------------------------------------------------------------

TEST_F(DaemonFixture, ChannelSetupCountsDistinctRemotePeers) {
  // Tasks on host A feed consumers on hosts B and C (and one local): the
  // Data Manager must open exactly two channels (one per distinct peer).
  common::HostId a = host(0, 1), b = host(0, 2), c = host(1, 1);
  afg::Afg graph("g");
  afg::TaskProperties one_out;
  one_out.outputs.push_back(afg::FileSpec{"", 1000, false});
  afg::TaskProperties one_in;
  one_in.inputs.resize(1);
  auto t0 = graph.add_task("t0", "synthetic.w100", one_out);
  auto t1 = graph.add_task("t1", "synthetic.w100", one_out);
  auto t2 = graph.add_task("t2", "synthetic.w100", one_out);
  auto c0 = graph.add_task("c0", "synthetic.w100", one_in);
  auto c1 = graph.add_task("c1", "synthetic.w100", one_in);
  auto c2 = graph.add_task("c2", "synthetic.w100", one_in);
  ASSERT_TRUE(graph.connect(*t0, 0, *c0, 0).ok());
  ASSERT_TRUE(graph.connect(*t1, 0, *c1, 0).ok());
  ASSERT_TRUE(graph.connect(*t2, 0, *c2, 0).ok());

  auto plan = std::make_shared<ExecutionPlan>();
  plan->app = common::AppId(1);
  plan->origin = host(0, 0);
  plan->graph = graph;
  plan->kernels.resize(graph.task_count());
  for (const afg::TaskNode& node : graph.tasks()) {
    plan->perf.push_back(*sched::resolve_perf(node, repos[0]->tasks()));
  }
  auto assign = [&](afg::TaskId task, common::HostId h) {
    plan->rat.assignments.push_back(
        sched::Assignment{task, topology.host(h).site, {h}, 1.0, 0, 0});
  };
  assign(*t0, a);
  assign(*t1, a);
  assign(*t2, a);
  assign(*c0, b);   // remote peer 1
  assign(*c1, b);   // same peer: channel reused
  assign(*c2, c);   // remote peer 2
  // Producers all on A; consumers get their own DM below.

  DataManager dm_a(*core, a), dm_b(*core, b), dm_c(*core, c);
  fabric.bind(a, [&](const net::Message& m) { dm_a.handle(m); });
  fabric.bind(b, [&](const net::Message& m) { dm_b.handle(m); });
  fabric.bind(c, [&](const net::Message& m) { dm_c.handle(m); });

  // Activate the remote DMs first so they can acknowledge setups.
  dm_b.activate(plan, [] {});
  dm_c.activate(plan, [] {});
  bool ready = false;
  dm_a.activate(plan, [&ready] { ready = true; });
  EXPECT_FALSE(ready);  // two setups in flight
  engine.run_until(1.0);
  EXPECT_TRUE(ready);
  EXPECT_EQ(fabric.stats().sent_by_type.at("dm.setup"), 2u);
  EXPECT_EQ(fabric.stats().sent_by_type.at("dm.setup_ack"), 2u);
}

TEST_F(DaemonFixture, ReadyFiresImmediatelyWithoutRemoteEdges) {
  common::HostId a = host(0, 1);
  afg::Afg graph = afg::make_independent(3, 100);
  auto plan = make_plan(graph, {a}, host(0, 0));
  DataManager dm(*core, a);
  bool ready = false;
  dm.activate(plan, [&ready] { ready = true; });
  EXPECT_TRUE(ready);  // no channels needed, synchronous
}

TEST_F(DaemonFixture, TasksRunSequentiallyPerHost) {
  common::HostId a = host(0, 1);
  afg::Afg graph = afg::make_independent(3, 500);
  auto plan = make_plan(graph, {a}, host(0, 0));
  DataManager dm(*core, a);
  int done = 0;
  fabric.bind(host(0, 0), [&](const net::Message& m) {
    if (m.type == msg::kAcTaskDone) ++done;
  });
  fabric.bind(a, [&](const net::Message& m) { dm.handle(m); });
  dm.activate(plan, [] {});
  dm.start_app(plan->app);
  // One task at a time: the host load never exceeds background + 1.
  double peak = 0.0;
  while (!engine.empty()) {
    engine.run_steps(1);
    peak = std::max(peak, topology.host(a).state.cpu_load);
  }
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST_F(DaemonFixture, DuplicateDeliveryIsIgnored) {
  common::HostId a = host(0, 1);
  afg::Afg graph("g");
  afg::TaskProperties one_in;
  one_in.inputs.resize(1);
  one_in.inputs[0] = afg::FileSpec{"", 0.0, true};  // expects one delivery
  auto t = graph.add_task("t", "synthetic.w100", one_in);
  // Fake a parent edge by adding a producer assigned elsewhere.
  afg::TaskProperties one_out;
  one_out.outputs.push_back(afg::FileSpec{"", 100, false});
  auto p = graph.add_task("p", "synthetic.w100", one_out);
  ASSERT_TRUE(graph.connect(*p, 0, *t, 0).ok());

  // make_plan round-robins tasks to hosts; build the placement explicitly.
  auto mutable_plan =
      std::make_shared<ExecutionPlan>(*make_plan(graph, {a}, host(0, 0)));
  mutable_plan->rat.assignments.clear();
  mutable_plan->rat.assignments.push_back(
      sched::Assignment{*t, common::SiteId(0), {a}, 1.0, 0, 0});
  mutable_plan->rat.assignments.push_back(
      sched::Assignment{*p, common::SiteId(1), {host(1, 1)}, 1.0, 0, 0});
  PlanPtr plan = mutable_plan;

  DataManager dm(*core, a);
  int done = 0;
  fabric.bind(host(0, 0), [&](const net::Message& m) {
    if (m.type == msg::kAcTaskDone) ++done;
  });
  dm.activate(plan, [] {});
  dm.start_app(plan->app);
  engine.run_until(1.0);
  EXPECT_EQ(done, 0);  // waiting for its input

  // Two identical deliveries: the second must not double-start anything.
  net::Message delivery{host(1, 1), a, msg::kDmData, 100,
                        std::any(DataDelivery{plan->app, *t, 0, {}})};
  dm.handle(delivery);
  dm.handle(delivery);
  engine.run();
  EXPECT_EQ(done, 1);
}

TEST_F(DaemonFixture, SuspendHoldsQueueUntilResume) {
  common::HostId a = host(0, 1);
  afg::Afg graph = afg::make_independent(1, 500);
  auto plan = make_plan(graph, {a}, host(0, 0));
  DataManager dm(*core, a);
  int done = 0;
  fabric.bind(host(0, 0), [&](const net::Message& m) {
    if (m.type == msg::kAcTaskDone) ++done;
  });
  dm.activate(plan, [] {});
  dm.suspend(plan->app);
  dm.start_app(plan->app);
  engine.run_until(60.0);
  EXPECT_EQ(done, 0);  // suspended before anything started
  dm.resume(plan->app);
  engine.run();
  EXPECT_EQ(done, 1);
}

TEST_F(DaemonFixture, AbortReleasesLoadAndReportsOrigin) {
  common::HostId a = host(0, 1);
  afg::Afg graph = afg::make_independent(1, 5000);
  auto plan = make_plan(graph, {a}, host(0, 0));
  DataManager dm(*core, a);
  dm.activate(plan, [] {});
  dm.start_app(plan->app);
  engine.run_steps(1);  // let the first quantum begin
  EXPECT_NEAR(topology.host(a).state.cpu_load, 1.0, 1e-9);

  auto aborted = dm.abort_running();
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0].app, plan->app);
  EXPECT_EQ(aborted[0].origin, host(0, 0));
  EXPECT_NEAR(topology.host(a).state.cpu_load, 0.0, 1e-9);
  EXPECT_EQ(topology.host(a).state.running_tasks, 0);
}

TEST_F(DaemonFixture, PinnedTaskSurvivesAbort) {
  common::HostId a = host(0, 1);
  afg::Afg graph = afg::make_independent(1, 5000);
  auto plan = make_plan(graph, {a}, host(0, 0));
  DataManager dm(*core, a);
  dm.activate(plan, [] {}, common::TaskId(0));  // pinned
  dm.start_app(plan->app);
  engine.run_steps(1);
  EXPECT_TRUE(dm.abort_running().empty());  // unkillable
}

// ---- GroupManager -------------------------------------------------------------

TEST_F(DaemonFixture, FilterForwardsOnlySignificantChanges) {
  common::HostId leader = host(0, 0);
  GroupManager gm(*core, topology.host(host(0, 1)).group, leader, leader);

  auto report = [&](common::HostId h, double load) {
    MonReport r;
    r.host = h;
    r.sample = db::WorkloadSample{engine.now(), load, 100.0};
    gm.handle(net::Message{h, leader, msg::kMonReport, 160, std::any(r)});
  };
  // Default threshold is 0.15.
  report(host(0, 1), 0.50);  // first: forwarded
  report(host(0, 1), 0.55);  // +0.05: filtered
  report(host(0, 1), 0.70);  // +0.20 vs last forwarded: forwarded
  report(host(0, 1), 0.60);  // -0.10: filtered
  EXPECT_EQ(gm.reports_received(), 4u);
  EXPECT_EQ(gm.reports_forwarded(), 2u);
  EXPECT_EQ(fabric.stats().sent_by_type.at("gm.report"), 2u);
}

TEST_F(DaemonFixture, EchoRoundDetectsSilentMember) {
  common::HostId leader = host(0, 0);
  common::GroupId group = topology.host(leader).group;
  GroupManager gm(*core, group, leader, leader);

  int down_notices = 0;
  // The site server == leader here; capture gm.host_down at the leader.
  fabric.bind(leader, [&](const net::Message& m) {
    if (m.type == msg::kGmHostDown) ++down_notices;
    if (m.type == msg::kGmEchoReply || m.type == msg::kMonReport) {
      gm.handle(m);
    }
  });
  // Members answer echoes themselves... except the victim, which is down.
  common::HostId victim;
  for (common::HostId member : topology.group(group).members) {
    if (member == leader) continue;
    if (!victim.valid()) {
      victim = member;
      topology.set_host_up(member, false);
      continue;
    }
    fabric.bind(member, [&, member](const net::Message& m) {
      if (m.type == msg::kGmEcho) {
        const auto& echo = std::any_cast<const EchoPacket&>(m.payload);
        (void)fabric.send(net::Message{member, echo.leader, msg::kGmEchoReply,
                                       64,
                                       std::any(EchoPacket{member, echo.seq})});
      }
    });
  }

  gm.start();
  engine.run_until(3.0 * core->options().echo_period);
  gm.stop();
  EXPECT_EQ(down_notices, 1);  // the victim, reported exactly once
}

}  // namespace
}  // namespace vdce::runtime
