// vdce::tenancy — the multi-tenant concurrency plane (docs/TENANCY.md):
// admission-control policy units, typed submission rejections, co-scheduling
// properties over replayed arrival sequences (no host double-booked, every
// admitted app completes with a tiled phase breakdown, contention never
// beats a solo run), the submit/drain vs. run_application differential, and
// the staggered-arrival determinism regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "editor/builder.hpp"
#include "scale/generate.hpp"
#include "tenancy/tenancy.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

// --- AdmissionController policy units ---------------------------------------

TEST(AdmissionController, FifoAdmitsInSubmissionOrder) {
  tenancy::TenancyOptions opt;
  opt.max_in_flight = 2;
  tenancy::AdmissionController ac(opt);
  ASSERT_TRUE(ac.enqueue(1, "a", 5).ok());
  ASSERT_TRUE(ac.enqueue(2, "b", 9).ok());  // higher priority, later arrival
  ASSERT_TRUE(ac.enqueue(3, "a", 1).ok());
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(ac.admit_next(), std::nullopt);  // max_in_flight reached
  ac.complete(1);
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(3));
}

TEST(AdmissionController, PriorityAdmitsHigherFirstFifoTieBreak) {
  tenancy::TenancyOptions opt;
  opt.policy = tenancy::QueuePolicy::kPriority;
  tenancy::AdmissionController ac(opt);
  ASSERT_TRUE(ac.enqueue(1, "a", 1).ok());
  ASSERT_TRUE(ac.enqueue(2, "b", 3).ok());
  ASSERT_TRUE(ac.enqueue(3, "c", 3).ok());  // ties with 2; submitted later
  ASSERT_TRUE(ac.enqueue(4, "d", 2).ok());
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(4));
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(1));
}

TEST(AdmissionController, DeferKeepsOriginalPlaceInLine) {
  tenancy::TenancyOptions opt;
  opt.max_in_flight = 1;
  tenancy::AdmissionController ac(opt);
  ASSERT_TRUE(ac.enqueue(1, "a", 1).ok());
  ASSERT_TRUE(ac.enqueue(2, "b", 1).ok());
  ASSERT_EQ(ac.admit_next(), std::optional<std::uint64_t>(1));
  // 1 loses its schedule to contention and re-queues: its original sequence
  // number means it is still ahead of 2.
  ac.defer(1);
  EXPECT_EQ(ac.in_flight(), 0u);
  EXPECT_EQ(ac.admit_next(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(ac.stats().deferred, 1u);
}

TEST(AdmissionController, QuotaAndQueueBoundRejectTyped) {
  tenancy::TenancyOptions opt;
  opt.per_user_quota = 1;
  opt.max_queue_depth = 2;
  tenancy::AdmissionController ac(opt);
  ASSERT_TRUE(ac.enqueue(1, "a", 1).ok());
  common::Status quota = ac.enqueue(2, "a", 1);
  ASSERT_FALSE(quota.ok());
  EXPECT_EQ(quota.error().code, common::ErrorCode::kQuotaExceeded);
  EXPECT_NE(quota.error().message.find("a"), std::string::npos);

  ASSERT_TRUE(ac.enqueue(3, "b", 1).ok());
  common::Status depth = ac.enqueue(4, "c", 1);
  ASSERT_FALSE(depth.ok());
  EXPECT_EQ(depth.error().code, common::ErrorCode::kQuotaExceeded);
  EXPECT_EQ(ac.stats().rejected, 2u);

  // Completion frees the user's quota share again.
  ASSERT_EQ(ac.admit_next(), std::optional<std::uint64_t>(1));
  ac.complete(1);
  EXPECT_TRUE(ac.enqueue(5, "a", 1).ok());
}

// --- environment plumbing ---------------------------------------------------

afg::Afg tiny_app(const std::string& name, double mflop = 300.0) {
  editor::AppBuilder app(name);
  auto a = app.task("a", "synthetic.w" + std::to_string(
                             static_cast<long long>(mflop)))
               .output_data(1e4);
  auto b = app.task("b", "synthetic.w200");
  EXPECT_TRUE(app.link(a, b).has_value());
  return app.build().value();
}

EnvironmentOptions quiet_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  return options;
}

TEST(TenancySubmission, RejectsBeyondPerUserQuota) {
  EnvironmentOptions options = quiet_options();
  options.tenancy.max_in_flight = 1;
  options.tenancy.per_user_quota = 1;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  auto first = env.submit_application(tiny_app("first"), session);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  auto second = env.submit_application(tiny_app("second"), session);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, common::ErrorCode::kQuotaExceeded);
  EXPECT_NE(second.error().message.find("u"), std::string::npos)
      << second.error().message;

  // The rejection is transient: once the fleet drains the quota frees up.
  ASSERT_TRUE(env.drain().ok());
  auto third = env.submit_application(tiny_app("third"), session);
  EXPECT_TRUE(third.has_value()) << third.error().to_string();
  ASSERT_TRUE(env.drain().ok());
  EXPECT_EQ(env.tenancy_stats().rejected, 1u);
}

TEST(TenancySubmission, RejectsWhenQueueFull) {
  EnvironmentOptions options = quiet_options();
  options.tenancy.max_in_flight = 1;
  options.tenancy.max_queue_depth = 1;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  ASSERT_TRUE(env.submit_application(tiny_app("a"), session).has_value());
  ASSERT_TRUE(env.submit_application(tiny_app("b"), session).has_value());
  auto overflow = env.submit_application(tiny_app("c"), session);
  ASSERT_FALSE(overflow.has_value());
  EXPECT_EQ(overflow.error().code, common::ErrorCode::kQuotaExceeded);
  EXPECT_NE(overflow.error().message.find("queue"), std::string::npos)
      << overflow.error().message;
  ASSERT_TRUE(env.drain().ok());
}

TEST(TenancySubmission, RejectsUnknownUser) {
  VdceEnvironment env(make_campus_pair(5), quiet_options());
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("real", "p").ok());
  Session session = env.login(common::SiteId(0), "real", "p").value();
  session.account.user_name = "ghost";  // forged / stale session
  auto handle = env.submit_application(tiny_app("a"), session);
  ASSERT_FALSE(handle.has_value());
  EXPECT_EQ(handle.error().code, common::ErrorCode::kNotFound);
  EXPECT_NE(handle.error().message.find("ghost"), std::string::npos)
      << handle.error().message;
}

TEST(TenancySubmission, HandleLifecycleAndNonBlockingReport) {
  VdceEnvironment env(make_campus_pair(5), quiet_options());
  env.bring_up();
  ASSERT_TRUE(env.try_add_user("u", "p").ok());
  Session session = env.login(common::SiteId(0), "u", "p").value();

  auto handle = env.submit_application(tiny_app("a"), session);
  ASSERT_TRUE(handle.has_value());
  EXPECT_TRUE(handle->valid());
  EXPECT_EQ(env.in_flight_submissions(), 1u);

  // Not terminal yet: report() refuses, app_state() reports progress.
  auto early = env.report(*handle);
  ASSERT_FALSE(early.has_value());
  EXPECT_EQ(early.error().code, common::ErrorCode::kInvalidArgument);
  auto state = env.app_state(*handle);
  ASSERT_TRUE(state.has_value());
  EXPECT_NE(*state, AppState::kFinished);

  auto report = env.wait(*handle);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_TRUE(report->success);
  EXPECT_EQ(env.in_flight_submissions(), 0u);
  EXPECT_EQ(env.app_state(*handle).value(), AppState::kFinished);

  // wait() is idempotent; report() now answers without advancing time.
  const common::SimTime now = env.now();
  auto again = env.wait(*handle);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->completed, report->completed);
  EXPECT_EQ(env.now(), now);
  EXPECT_TRUE(env.report(*handle).has_value());

  // Unknown handles are typed kNotFound everywhere.
  AppHandle bogus{999};
  EXPECT_EQ(env.wait(bogus).error().code, common::ErrorCode::kNotFound);
  EXPECT_EQ(env.report(bogus).error().code, common::ErrorCode::kNotFound);
  EXPECT_EQ(env.app_state(bogus).error().code, common::ErrorCode::kNotFound);
}

// --- replayed arrival sequences --------------------------------------------

struct FleetResult {
  std::vector<scale::TenantArrival> arrivals;
  std::vector<runtime::ExecutionReport> reports;  ///< arrival order
  std::uint64_t reservation_conflicts = 0;
};

/// Bring up a small generated grid, replay `spec`'s arrival sequence through
/// the asynchronous API, and drain.  Expects every submission to be
/// accepted and to succeed.
FleetResult replay_fleet(const scale::TenantSpec& spec,
                         std::uint64_t grid_seed = 41) {
  FleetResult result;
  ScaleSpec scale_spec;
  scale_spec.grid.sites = 2;
  scale_spec.grid.hosts_per_site = 6;
  scale_spec.grid.seed = grid_seed;
  scale_spec.options.runtime.exec_noise_cv = 0.0;
  auto env = VdceEnvironment::make_scale_environment(scale_spec);
  EXPECT_TRUE(env.has_value()) << env.error().to_string();
  if (!env) return result;

  result.arrivals = scale::make_tenant_arrivals(spec);
  std::vector<Session> sessions;
  for (std::size_t t = 0; t < spec.tenants; ++t) {
    int priority = 1;
    for (const scale::TenantArrival& a : result.arrivals) {
      if (a.tenant == t) { priority = a.priority; break; }
    }
    const std::string user = "tenant" + std::to_string(t);
    EXPECT_TRUE((*env)->try_add_user(user, "pw", priority).ok());
    sessions.push_back((*env)->login(common::SiteId(0), user, "pw").value());
  }

  std::vector<AppHandle> handles;
  for (const scale::TenantArrival& a : result.arrivals) {
    if (a.at > (*env)->now()) (*env)->run_for(a.at - (*env)->now());
    afg::Afg graph = scale::make_workload(a.workload, a.app_name);
    RunOptions run;
    run.real_kernels = false;
    auto handle = (*env)->submit_application(graph, sessions[a.tenant], run);
    EXPECT_TRUE(handle.has_value())
        << a.app_name << ": " << handle.error().to_string();
    if (handle) handles.push_back(*handle);
  }
  EXPECT_TRUE((*env)->drain().ok());

  for (AppHandle h : handles) {
    auto report = (*env)->report(h);
    EXPECT_TRUE(report.has_value()) << report.error().to_string();
    if (report) {
      EXPECT_TRUE(report->success) << report->failure_reason;
      result.reports.push_back(std::move(*report));
    }
  }
  result.reservation_conflicts = (*env)->core().reservations().conflicts();
  return result;
}

TEST(TenancyProperties, NoHostDoubleBookedAcrossConcurrentApps) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    scale::TenantSpec spec;
    spec.tenants = 4;
    spec.apps_per_tenant = 2;
    spec.seed = seed;
    FleetResult fleet = replay_fleet(spec);
    ASSERT_EQ(fleet.reports.size(), spec.tenants * spec.apps_per_tenant);
    EXPECT_EQ(fleet.reservation_conflicts, 0u) << "seed " << seed;

    // Every task interval, keyed by host; intervals from different apps on
    // the same machine must not overlap (host-exclusive co-scheduling).
    struct Claim {
      std::uint32_t host;
      std::uint32_t app;
      double start, end;
    };
    std::vector<Claim> claims;
    for (const runtime::ExecutionReport& r : fleet.reports) {
      for (const runtime::TaskOutcome& o : r.outcomes) {
        claims.push_back(
            Claim{o.host.value(), r.app.value(), o.started, o.finished});
      }
    }
    std::sort(claims.begin(), claims.end(), [](const Claim& a, const Claim& b) {
      if (a.host != b.host) return a.host < b.host;
      return a.start < b.start;
    });
    for (std::size_t i = 1; i < claims.size(); ++i) {
      const Claim& p = claims[i - 1];
      const Claim& c = claims[i];
      if (c.host != p.host || c.app == p.app) continue;
      EXPECT_GE(c.start, p.end)
          << "seed " << seed << ": host " << c.host << " shared by apps "
          << p.app << " and " << c.app;
    }
  }
}

TEST(TenancyProperties, EveryAdmittedAppCompletesWithTiledBreakdown) {
  scale::TenantSpec spec;
  spec.tenants = 4;
  spec.apps_per_tenant = 2;
  spec.seed = 9;
  FleetResult fleet = replay_fleet(spec);
  ASSERT_EQ(fleet.reports.size(), spec.tenants * spec.apps_per_tenant);
  for (const runtime::ExecutionReport& r : fleet.reports) {
    ASSERT_TRUE(r.success);
    const runtime::ExecutionReport::PhaseBreakdown b = r.breakdown();
    EXPECT_GE(b.contention, 0.0);
    EXPECT_GT(b.scheduling, 0.0);
    EXPECT_GT(b.setup, 0.0);
    EXPECT_GT(b.execution, 0.0);
    // The four phases tile [enqueued, completed] exactly: contention ends
    // where scheduling starts (admitted), scheduling ends where setup
    // starts (submitted), setup ends at the startup signal.
    EXPECT_DOUBLE_EQ(r.enqueued + b.contention, r.admitted);
    EXPECT_DOUBLE_EQ(r.admitted + b.scheduling, r.submitted);
    EXPECT_DOUBLE_EQ(r.submitted + b.setup, r.exec_started);
    EXPECT_DOUBLE_EQ(r.exec_started + b.execution, r.completed);
    EXPECT_DOUBLE_EQ(b.total(), r.completed - r.enqueued);
  }
}

// Contention-aware re-ranking can only move a task to a worse-or-equal
// machine: the contended choice is the best of a *subset* of the ranked
// hosts.  Phrased per machine, with one single-task app per tenant (for a
// multi-task DAG, forced spreading can legitimately beat the greedy
// per-task solo placement in realized makespan, so the per-app claim is
// only guaranteed at task granularity).
TEST(TenancyProperties, ContentionNeverBeatsSoloMakespan) {
  constexpr std::size_t kTenants = 6;
  auto make_env = [] {
    ScaleSpec scale_spec;
    scale_spec.grid.sites = 2;
    scale_spec.grid.hosts_per_site = 6;
    scale_spec.grid.seed = 41;
    scale_spec.options.runtime.exec_noise_cv = 0.0;
    scale_spec.options.metrics.enabled = true;
    auto env = VdceEnvironment::make_scale_environment(scale_spec);
    EXPECT_TRUE(env.has_value());
    return std::move(*env);
  };
  auto one_task_app = [](std::size_t u) {
    // Distinct work sizes, so no (task, host) measured-history entry of one
    // tenant can influence another tenant's prediction.
    editor::AppBuilder app("solo" + std::to_string(u));
    app.task("only", "synthetic.w" + std::to_string(3000 + 17 * u));
    return app.build().value();
  };
  const double kArrival = 2.0;

  // The fleet: every tenant submits at the same instant, so all but the
  // first admitted app schedule against a reservation table that already
  // holds the better machines.
  auto fleet_env = make_env();
  std::vector<AppHandle> handles;
  fleet_env->run_for(kArrival);
  for (std::size_t u = 0; u < kTenants; ++u) {
    const std::string user = "tenant" + std::to_string(u);
    ASSERT_TRUE(fleet_env->try_add_user(user, "pw").ok());
    Session session =
        fleet_env->login(common::SiteId(0), user, "pw").value();
    RunOptions run;
    run.real_kernels = false;
    auto handle = fleet_env->submit_application(one_task_app(u), session, run);
    ASSERT_TRUE(handle.has_value()) << handle.error().to_string();
    handles.push_back(*handle);
  }
  ASSERT_TRUE(fleet_env->drain().ok());
  // The scenario is only meaningful if contention actually steered the
  // scheduler away from reserved machines.
  EXPECT_GT(
      fleet_env->metrics().counter("sched.contention.hosts_skipped").value(),
      0u);

  for (std::size_t u = 0; u < kTenants; ++u) {
    auto fleet_report = fleet_env->report(handles[u]);
    ASSERT_TRUE(fleet_report.has_value());
    ASSERT_TRUE(fleet_report->success);

    // Solo baseline: the same submission, same instant, same grid — alone.
    auto solo_env = make_env();
    const std::string user = "tenant" + std::to_string(u);
    ASSERT_TRUE(solo_env->try_add_user(user, "pw").ok());
    Session session = solo_env->login(common::SiteId(0), user, "pw").value();
    solo_env->run_for(kArrival);
    RunOptions run;
    run.real_kernels = false;
    auto solo = solo_env->run_application(one_task_app(u), session, run);
    ASSERT_TRUE(solo.has_value()) << solo.error().to_string();
    ASSERT_TRUE(solo->success);

    EXPECT_GE(fleet_report->makespan(), solo->makespan() - 1e-9)
        << "tenant " << u;
    // End-to-end latency additionally pays the admission wait.
    EXPECT_GE(fleet_report->completed - fleet_report->enqueued,
              solo->makespan() - 1e-9)
        << "tenant " << u;
    if (u == 0) {
      // The first admitted app saw an empty reservation table, so its
      // placement is bit-identical to the solo run's.
      ASSERT_EQ(fleet_report->outcomes.size(), solo->outcomes.size());
      EXPECT_EQ(fleet_report->outcomes[0].host, solo->outcomes[0].host);
      EXPECT_EQ(fleet_report->makespan(), solo->makespan());
    }
  }
}

// --- differential: submit/drain == run_application --------------------------

void expect_reports_identical(const runtime::ExecutionReport& a,
                              const runtime::ExecutionReport& b) {
  EXPECT_EQ(a.app.value(), b.app.value());
  EXPECT_EQ(a.app_name, b.app_name);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.enqueued, b.enqueued);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.exec_started, b.exec_started);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.scheduling_time, b.scheduling_time);
  EXPECT_EQ(a.reschedules, b.reschedules);
  EXPECT_EQ(a.failures_survived, b.failures_survived);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const runtime::TaskOutcome& x = a.outcomes[i];
    const runtime::TaskOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.task, y.task);
    EXPECT_EQ(x.host, y.host);
    EXPECT_EQ(x.site, y.site);
    EXPECT_EQ(x.started, y.started);
    EXPECT_EQ(x.finished, y.finished);
    EXPECT_EQ(x.attempts, y.attempts);
  }
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].reason, b.recoveries[i].reason);
    EXPECT_EQ(a.recoveries[i].detected_at, b.recoveries[i].detected_at);
  }
  EXPECT_EQ(a.dag_edges, b.dag_edges);
}

// A lone submission redeemed with drain() must be indistinguishable — in
// the report, bit for bit, and in the emitted trace, byte for byte — from
// the synchronous run_application() path.  20 generated workloads, the
// stochastic execution path included.
TEST(TenancyDifferential, SubmitDrainMatchesRunApplicationBitForBit) {
  constexpr std::size_t kCases = 20;
  constexpr std::array<scale::WorkloadShape, 3> kShapes{
      scale::WorkloadShape::kLayered, scale::WorkloadShape::kForkJoin,
      scale::WorkloadShape::kRandomDag};
  for (std::size_t i = 0; i < kCases; ++i) {
    scale::WorkloadSpec w;
    w.shape = kShapes[i % kShapes.size()];
    w.tasks = 5 + (i * 3) % 16;
    w.width = 2 + i % 4;
    w.seed = 500 + i;
    afg::Afg graph = scale::make_workload(w, "diff-" + std::to_string(i));

    auto build_env = [] {
      EnvironmentOptions options;
      options.runtime.exec_noise_cv = 0.1;  // include the stochastic path
      options.trace.enabled = true;
      auto env = std::make_unique<VdceEnvironment>(make_campus_pair(17),
                                                   options);
      env->bring_up();
      EXPECT_TRUE(env->try_add_user("u", "p").ok());
      return env;
    };
    RunOptions run;
    run.real_kernels = false;

    auto sync_env = build_env();
    Session sync_session =
        sync_env->login(common::SiteId(0), "u", "p").value();
    auto sync_report = sync_env->run_application(graph, sync_session, run);
    ASSERT_TRUE(sync_report.has_value())
        << "case " << i << ": " << sync_report.error().to_string();

    auto async_env = build_env();
    Session async_session =
        async_env->login(common::SiteId(0), "u", "p").value();
    auto handle = async_env->submit_application(graph, async_session, run);
    ASSERT_TRUE(handle.has_value())
        << "case " << i << ": " << handle.error().to_string();
    ASSERT_TRUE(async_env->drain().ok());
    auto async_report = async_env->report(*handle);
    ASSERT_TRUE(async_report.has_value())
        << "case " << i << ": " << async_report.error().to_string();

    expect_reports_identical(*sync_report, *async_report);
    EXPECT_EQ(sync_env->trace().to_jsonl(), async_env->trace().to_jsonl())
        << "case " << i << ": traces diverge";
  }
}

// --- determinism regression --------------------------------------------------

// The full multi-tenant pipeline — staggered arrivals, admission, deferral,
// co-scheduled execution — replayed twice from the same spec must emit
// byte-identical traces.  Any hash-order or wall-clock dependence in the
// tenancy plane shows up here as a diff.
TEST(TenancyDeterminism, StaggeredEightTenantTraceIsByteIdentical) {
  auto run_once = [] {
    ScaleSpec scale_spec;
    scale_spec.grid.sites = 2;
    scale_spec.grid.hosts_per_site = 6;
    scale_spec.grid.seed = 77;
    scale_spec.options.trace.enabled = true;
    scale_spec.options.runtime.exec_noise_cv = 0.1;
    auto env = VdceEnvironment::make_scale_environment(scale_spec);
    EXPECT_TRUE(env.has_value());

    scale::TenantSpec spec;
    spec.tenants = 8;
    spec.apps_per_tenant = 2;
    spec.seed = 13;
    const auto arrivals = scale::make_tenant_arrivals(spec);
    std::vector<Session> sessions;
    for (std::size_t t = 0; t < spec.tenants; ++t) {
      const std::string user = "tenant" + std::to_string(t);
      EXPECT_TRUE((*env)->try_add_user(user, "pw").ok());
      sessions.push_back(
          (*env)->login(common::SiteId(0), user, "pw").value());
    }
    for (const scale::TenantArrival& a : arrivals) {
      if (a.at > (*env)->now()) (*env)->run_for(a.at - (*env)->now());
      afg::Afg graph = scale::make_workload(a.workload, a.app_name);
      RunOptions run;
      run.real_kernels = false;
      auto handle =
          (*env)->submit_application(graph, sessions[a.tenant], run);
      EXPECT_TRUE(handle.has_value());
    }
    EXPECT_TRUE((*env)->drain().ok());
    EXPECT_GE((*env)->tenancy_stats().completed,
              spec.tenants * spec.apps_per_tenant);
    return (*env)->trace().to_jsonl();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace vdce
