// Unit tests for the discrete-event kernel: ordering, cancellation, timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace vdce::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SameTimeFifoBySchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CallbacksMayScheduleMore) {
  Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] {
    ++fired;
    engine.schedule(1.0, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  auto handle = engine.schedule(1.0, [&] { fired = true; });
  handle.cancel();
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine engine;
  auto handle = engine.schedule(1.0, [] {});
  engine.run();
  handle.cancel();  // must not crash
  handle.cancel();
}

TEST(Engine, RunUntilLeavesClockAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(5.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine engine;
  bool fired = false;
  engine.schedule(2.0, [&] { fired = true; });
  engine.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, RunStepsBoundsWork) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 100; ++i) engine.schedule(1.0, [&] { ++fired; });
  std::size_t n = engine.run_steps(10);
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(engine.pending_events(), 90u);
}

TEST(Engine, PeriodicTimerFiresRepeatedly) {
  Engine engine;
  int ticks = 0;
  auto timer = engine.every(1.0, [&] { ++ticks; });
  engine.run_until(5.5);
  EXPECT_EQ(ticks, 5);
  timer.cancel();
  engine.run_until(10.0);
  EXPECT_EQ(ticks, 5);
}

TEST(Engine, PeriodicTimerInitialDelay) {
  Engine engine;
  std::vector<double> times;
  engine.every(2.0, [&] { times.push_back(engine.now()); }, 0.5);
  engine.run_until(5.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
  EXPECT_DOUBLE_EQ(times[2], 4.5);
}

TEST(Engine, TimerCancelFromInsideCallback) {
  Engine engine;
  int ticks = 0;
  TimerHandle timer;
  timer = engine.every(1.0, [&] {
    if (++ticks == 3) timer.cancel();
  });
  engine.run_until(10.0);
  EXPECT_EQ(ticks, 3);
}

TEST(Engine, TotalFiredCountsOnlyUncancelled) {
  Engine engine;
  auto h = engine.schedule(1.0, [] {});
  engine.schedule(2.0, [] {});
  h.cancel();
  engine.run();
  EXPECT_EQ(engine.total_fired(), 1u);
}

TEST(Engine, ZeroDelayFiresAtCurrentTime) {
  Engine engine;
  engine.schedule(1.0, [&engine] {
    bool inner = false;
    engine.schedule(0.0, [&] { inner = true; });
    // Inner event fires later in the run loop, not synchronously.
    EXPECT_FALSE(inner);
  });
  std::size_t fired = engine.run();
  EXPECT_EQ(fired, 2u);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(EventHandle, PendingReflectsState) {
  Engine engine;
  auto h = engine.schedule(1.0, [] {});
  EXPECT_TRUE(h.pending());
  engine.run();
  EXPECT_FALSE(h.pending());
}

}  // namespace
}  // namespace vdce::sim
