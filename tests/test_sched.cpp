// Unit + property tests for the scheduling stack: Host Selection (Fig. 3),
// the Site Scheduler (Fig. 2), baselines, and the shared bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "afg/generate.hpp"
#include "db/site_repository.hpp"
#include "predict/model.hpp"
#include "sched/baselines.hpp"
#include "sched/host_selection.hpp"
#include "sched/schedule_builder.hpp"
#include "sched/site_scheduler.hpp"
#include "tasklib/registry.hpp"
#include "vdce/testbed.hpp"

namespace vdce::sched {
namespace {

/// Fixture: a 3-site heterogeneous testbed with seeded repositories.
struct SchedFixture : ::testing::Test {
  SchedFixture() {
    TestbedSpec spec;
    spec.sites = 3;
    spec.hosts_per_site = 6;
    spec.seed = 21;
    topology = make_testbed(spec);
    tasklib::register_standard_libraries(registry);
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      registry.seed_database(repo->tasks());
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = 2;
  }

  /// Precedence feasibility: every task starts at or after each parent's
  /// finish plus the modeled transfer time.
  void expect_feasible(const afg::Afg& graph,
                       const ResourceAllocationTable& table) {
    ASSERT_EQ(table.assignments.size(), graph.task_count());
    for (const afg::Edge& e : graph.edges()) {
      auto parent = table.find(e.from);
      auto child = table.find(e.to);
      ASSERT_TRUE(parent.has_value() && child.has_value());
      double transfer = topology.transfer_time(
          parent->primary_host(), child->primary_host(), graph.edge_bytes(e));
      EXPECT_GE(child->est_start + 1e-9, parent->est_finish + transfer)
          << "edge " << graph.task(e.from).instance_name << " -> "
          << graph.task(e.to).instance_name;
    }
    // No machine runs two tasks at once.
    for (const Assignment& a : table.assignments) {
      for (const Assignment& b : table.assignments) {
        if (a.task == b.task) continue;
        for (common::HostId ha : a.hosts) {
          for (common::HostId hb : b.hosts) {
            if (ha != hb) continue;
            bool disjoint = a.est_finish <= b.est_start + 1e-9 ||
                            b.est_finish <= a.est_start + 1e-9;
            EXPECT_TRUE(disjoint)
                << "host " << ha.value() << " double-booked";
          }
        }
      }
    }
    EXPECT_GT(table.schedule_length, 0.0);
  }

  net::Topology topology;
  tasklib::TaskRegistry registry;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  SchedulerContext context;
};

// ---- host selection (Fig. 3) ----------------------------------------------------

TEST_F(SchedFixture, HostSelectionPicksFastestIdleMachine) {
  afg::Afg graph = afg::make_independent(1, 100);
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  ASSERT_EQ(output->bids.size(), 1u);
  const HostBid& bid = output->bids.begin()->second;
  // The chosen machine must achieve the minimum prediction among all site-0
  // machines.
  double best = 1e18;
  for (const auto& rec :
       repos[0]->resources().available_hosts(common::SiteId(0))) {
    best = std::min(best, 100.0 / rec.speed_mflops);
  }
  EXPECT_NEAR(bid.predicted, best, 1e-9);
}

TEST_F(SchedFixture, HostSelectionHonoursPreferredMachine) {
  afg::Afg graph("g");
  afg::TaskProperties props;
  props.outputs.push_back(afg::FileSpec{"", 100, false});
  const std::string target =
      topology.host(topology.site(common::SiteId(0)).hosts[3]).spec.name;
  props.preferred_machine = target;
  ASSERT_TRUE(graph.add_task("t", "synthetic.w100", props).has_value());
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  ASSERT_EQ(output->bids.size(), 1u);
  EXPECT_EQ(output->bids.begin()->second.hosts[0],
            topology.site(common::SiteId(0)).hosts[3]);
}

TEST_F(SchedFixture, HostSelectionHonoursMachineType) {
  afg::Afg graph("g");
  afg::TaskProperties props;
  props.outputs.push_back(afg::FileSpec{"", 100, false});
  props.preferred_machine_type = "SGI";
  ASSERT_TRUE(graph.add_task("t", "synthetic.w100", props).has_value());
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  for (const auto& [task, bid] : output->bids) {
    for (common::HostId h : bid.hosts) {
      EXPECT_EQ(topology.host(h).spec.machine_type, "SGI");
    }
  }
}

TEST_F(SchedFixture, HostSelectionRespectsConstraintsDb) {
  afg::Afg graph = afg::make_independent(1, 100);
  const std::string task_name = graph.task(common::TaskId(0)).task_name;
  common::HostId only = topology.site(common::SiteId(0)).hosts[2];
  repos[0]->constraints().register_executable(task_name, only, "/opt/t");
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  ASSERT_EQ(output->bids.size(), 1u);
  EXPECT_EQ(output->bids.begin()->second.hosts[0], only);
}

TEST_F(SchedFixture, HostSelectionSkipsDownHosts) {
  afg::Afg graph = afg::make_independent(1, 100);
  for (common::HostId h : topology.site(common::SiteId(0)).hosts) {
    (void)repos[0]->resources().set_host_up(h, false);
  }
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  EXPECT_TRUE(output->bids.empty());  // nothing to bid with
}

TEST_F(SchedFixture, ParallelTaskGetsRequestedNodeCount) {
  afg::Afg graph("g");
  afg::TaskProperties props;
  props.mode = afg::ComputationMode::kParallel;
  props.num_nodes = 3;
  props.outputs.push_back(afg::FileSpec{"", 100, false});
  ASSERT_TRUE(graph.add_task("p", "synthetic.w1000", props).has_value());
  auto output = HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                            *repos[0], predictor);
  ASSERT_TRUE(output.has_value());
  ASSERT_EQ(output->bids.size(), 1u);
  EXPECT_EQ(output->bids.begin()->second.hosts.size(), 3u);
}

TEST_F(SchedFixture, ParallelBidFailsWhenSiteTooSmall) {
  afg::Afg graph("g");
  afg::TaskProperties props;
  props.mode = afg::ComputationMode::kParallel;
  props.num_nodes = 99;
  props.outputs.push_back(afg::FileSpec{"", 100, false});
  auto id = graph.add_task("p", "synthetic.w1000", props);
  auto perf = resolve_perf(graph.task(*id), repos[0]->tasks());
  ASSERT_TRUE(perf.has_value());
  auto bid = HostSelectionAlgorithm::best_bid(graph.task(*id), *perf,
                                              common::SiteId(0), *repos[0],
                                              predictor);
  ASSERT_FALSE(bid.has_value());
  EXPECT_EQ(bid.error().code, common::ErrorCode::kNoFeasibleResource);
}

TEST_F(SchedFixture, RankedHostsAscendByPrediction) {
  afg::Afg graph = afg::make_independent(1, 500);
  const afg::TaskNode& node = graph.task(common::TaskId(0));
  auto perf = resolve_perf(node, repos[0]->tasks());
  auto ranked = HostSelectionAlgorithm::feasible_hosts(
      node, *perf, common::SiteId(0), *repos[0], predictor);
  ASSERT_GE(ranked.size(), 2u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted, ranked[i].predicted);
  }
}

// ---- resolve_perf --------------------------------------------------------------

TEST_F(SchedFixture, ResolvePerfPrefersDatabase) {
  afg::Afg graph("g");
  auto id = graph.add_task("t", "matrix.multiply", afg::TaskProperties{});
  auto perf = resolve_perf(graph.task(*id), repos[0]->tasks());
  ASSERT_TRUE(perf.has_value());
  EXPECT_DOUBLE_EQ(perf->computation_mflop, 1500.0);
}

TEST_F(SchedFixture, ResolvePerfSynthesizes) {
  afg::Afg graph("g");
  auto id = graph.add_task("t", "synthetic.w777", afg::TaskProperties{});
  auto perf = resolve_perf(graph.task(*id), repos[0]->tasks());
  ASSERT_TRUE(perf.has_value());
  EXPECT_DOUBLE_EQ(perf->computation_mflop, 777.0);
}

TEST_F(SchedFixture, ResolvePerfRejectsUnknown) {
  afg::Afg graph("g");
  auto id = graph.add_task("t", "no.such_task", afg::TaskProperties{});
  EXPECT_FALSE(resolve_perf(graph.task(*id), repos[0]->tasks()).has_value());
}

// ---- schedule builder --------------------------------------------------------

TEST_F(SchedFixture, BuilderTracksHostOccupancy) {
  afg::Afg graph = afg::make_independent(2, 100);
  ScheduleBuilder builder(graph, topology);
  common::HostId h = topology.site(common::SiteId(0)).hosts[0];
  builder.place(common::TaskId(0), common::SiteId(0), {h}, 5.0);
  EXPECT_DOUBLE_EQ(builder.host_free(h), 5.0);
  const Assignment& second =
      builder.place(common::TaskId(1), common::SiteId(0), {h}, 3.0);
  EXPECT_DOUBLE_EQ(second.est_start, 5.0);
  EXPECT_DOUBLE_EQ(second.est_finish, 8.0);
  EXPECT_DOUBLE_EQ(builder.makespan(), 8.0);
}

TEST_F(SchedFixture, BuilderChargesEdgeTransfers) {
  afg::Afg graph = afg::make_chain(2, 100, 1e5);
  ScheduleBuilder builder(graph, topology);
  common::HostId a = topology.site(common::SiteId(0)).hosts[0];
  common::HostId b = topology.site(common::SiteId(1)).hosts[0];
  builder.place(common::TaskId(0), common::SiteId(0), {a}, 2.0);
  double expected_transfer = topology.transfer_time(a, b, 1e5);
  const Assignment& child =
      builder.place(common::TaskId(1), common::SiteId(1), {b}, 2.0);
  EXPECT_NEAR(child.est_start, 2.0 + expected_transfer, 1e-9);
}

// ---- site scheduler (Fig. 2) -----------------------------------------------------

TEST_F(SchedFixture, SchedulesFigure1Shape) {
  afg::Afg graph = afg::make_linear_solver_shape(1e5);
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value()) << table.error().message;
  expect_feasible(graph, *table);
  EXPECT_EQ(table->scheduler_name, "vdce-level");
}

TEST_F(SchedFixture, PaperObjectiveAlsoFeasible) {
  afg::Afg graph = afg::make_linear_solver_shape(1e5);
  SchedulingPolicy options;
  options.objective = SiteObjective::kPaperObjective;
  VdceSiteScheduler scheduler(options);
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  expect_feasible(graph, *table);
}

TEST_F(SchedFixture, LocalAccessStaysOnLocalSite) {
  common::Rng rng(3);
  afg::LayeredDagSpec spec;
  spec.tasks = 30;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  SchedulingPolicy options;
  options.access = db::AccessDomain::kLocalSite;
  VdceSiteScheduler scheduler(options);
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  for (const Assignment& a : table->assignments) {
    EXPECT_EQ(a.site, common::SiteId(0));
  }
}

TEST_F(SchedFixture, WideAreaUsesRemoteSitesWhenItHelps) {
  // A wide bag of equal tasks overflows the local site's machines.
  afg::Afg graph = afg::make_independent(24, 2000);
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  EXPECT_GT(table->sites_used().size(), 1u);
}

TEST_F(SchedFixture, RejectsCyclicGraph) {
  // Build a cycle by hand (connect() can't, so forge via two tasks and a
  // back edge through a third).
  afg::Afg graph("g");
  afg::TaskProperties p;
  p.inputs.resize(1);
  p.outputs.push_back(afg::FileSpec{"", 10, false});
  auto a = graph.add_task("a", "synthetic.w100", p);
  auto b = graph.add_task("b", "synthetic.w100", p);
  ASSERT_TRUE(graph.connect(*a, 0, *b, 0).ok());
  ASSERT_TRUE(graph.connect(*b, 0, *a, 0).ok());
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_FALSE(table.has_value());
  EXPECT_EQ(table.error().code, common::ErrorCode::kCycleDetected);
}

TEST_F(SchedFixture, HigherLevelTasksPlacedOnFasterMachinesFirst) {
  // A chain: the head has the highest level and must start at t=0.
  afg::Afg graph = afg::make_chain(4, 500, 1e4);
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  auto head = table->find(graph.find_task("s0").value());
  EXPECT_DOUBLE_EQ(head->est_start, 0.0);
}

// ---- baselines & factory: property sweep over (scheduler, graph shape) -----------

struct BaselineCase {
  const char* scheduler;
  const char* shape;
};

class SchedulerProperty
    : public SchedFixture,
      public ::testing::WithParamInterface<BaselineCase> {};

afg::Afg make_shape(const std::string& shape) {
  common::Rng rng(17);
  if (shape == "layered") {
    afg::LayeredDagSpec spec;
    spec.tasks = 40;
    spec.width = 6;
    return afg::make_layered_dag(spec, rng);
  }
  if (shape == "forkjoin") return afg::make_fork_join(5, 3, 400, 1e5);
  if (shape == "chain") return afg::make_chain(12, 300, 1e5);
  if (shape == "bag") return afg::make_independent(20, 800);
  if (shape == "reduce") return afg::make_reduction_tree(9, 200, 1e5);
  return afg::make_linear_solver_shape(1e5);
}

TEST_P(SchedulerProperty, ProducesFeasibleCompleteSchedule) {
  auto scheduler = make_scheduler(GetParam().scheduler);
  ASSERT_TRUE(scheduler.has_value());
  afg::Afg graph = make_shape(GetParam().shape);
  auto table = (*scheduler)->schedule(graph, context);
  ASSERT_TRUE(table.has_value()) << table.error().message;
  expect_feasible(graph, *table);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersAllShapes, SchedulerProperty,
    ::testing::Values(
        BaselineCase{"random", "layered"}, BaselineCase{"random", "chain"},
        BaselineCase{"round-robin", "layered"},
        BaselineCase{"round-robin", "bag"},
        BaselineCase{"min-load", "layered"},
        BaselineCase{"min-load", "forkjoin"},
        BaselineCase{"min-min", "layered"}, BaselineCase{"min-min", "reduce"},
        BaselineCase{"vdce-level", "layered"},
        BaselineCase{"vdce-level", "forkjoin"},
        BaselineCase{"vdce-level", "bag"},
        BaselineCase{"vdce-level-paper", "layered"},
        BaselineCase{"vdce-local", "layered"},
        BaselineCase{"heft", "layered"}, BaselineCase{"heft", "forkjoin"},
        BaselineCase{"heft", "chain"}, BaselineCase{"heft", "bag"},
        BaselineCase{"vdce-level", "solver"}),
    [](const auto& info) {
      std::string name = std::string(info.param.scheduler) + "_" +
                         info.param.shape;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(SchedFixture, PriorityModesAllProduceFeasibleSchedules) {
  common::Rng rng(23);
  afg::LayeredDagSpec spec;
  spec.tasks = 30;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  for (auto priority : {PriorityMode::kPaperLevels, PriorityMode::kCommLevels,
                        PriorityMode::kFifo}) {
    SchedulingPolicy options;
    options.priority = priority;
    VdceSiteScheduler scheduler(options);
    auto table = scheduler.schedule(graph, context);
    ASSERT_TRUE(table.has_value());
    expect_feasible(graph, *table);
  }
}

TEST_F(SchedFixture, NeighborsDomainClipsCandidateSites) {
  SchedulerContext wide = context;
  wide.k_nearest = 10;  // ask for everything
  SchedulingPolicy options;
  options.access = db::AccessDomain::kNeighbors;
  auto sites = candidate_site_set(wide, options);
  EXPECT_LE(sites.size(), 3u);  // local + at most 2 neighbours
  options.access = db::AccessDomain::kGlobal;
  EXPECT_EQ(candidate_site_set(wide, options).size(), 3u);  // all 3 testbed sites
  options.access = db::AccessDomain::kLocalSite;
  EXPECT_EQ(candidate_site_set(wide, options).size(), 1u);
}

TEST_F(SchedFixture, FactoryRejectsUnknownName) {
  EXPECT_FALSE(make_scheduler("dcp").has_value());
}

TEST_F(SchedFixture, HeftCompetitiveWithVdce) {
  // HEFT's comm-aware ranks + insertion placement should be at least
  // roughly as good as the VDCE level scheduler on average.
  double heft_total = 0.0, vdce_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    common::Rng rng(seed);
    afg::LayeredDagSpec spec;
    spec.tasks = 40;
    spec.width = 6;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    auto heft = make_scheduler("heft");
    VdceSiteScheduler vdce;
    auto t1 = (*heft)->schedule(graph, context);
    auto t2 = vdce.schedule(graph, context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    expect_feasible(graph, *t1);
    heft_total += t1->schedule_length;
    vdce_total += t2->schedule_length;
  }
  EXPECT_LT(heft_total, 1.15 * vdce_total);
}

TEST_F(SchedFixture, VdceBeatsRandomOnAverage) {
  double vdce_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    common::Rng rng(seed);
    afg::LayeredDagSpec spec;
    spec.tasks = 50;
    spec.width = 8;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    VdceSiteScheduler vdce;
    RandomScheduler random(seed);
    auto t1 = vdce.schedule(graph, context);
    auto t2 = random.schedule(graph, context);
    ASSERT_TRUE(t1.has_value() && t2.has_value());
    vdce_total += t1->schedule_length;
    random_total += t2->schedule_length;
  }
  EXPECT_LT(vdce_total, random_total);
}

TEST_F(SchedFixture, EverySchedulerIsDeterministic) {
  // Same context + same graph -> byte-identical allocation tables, for
  // every algorithm (the reproducibility EXPERIMENTS.md promises).
  afg::Afg graph = make_shape("layered");
  for (const char* name :
       {"vdce-level", "vdce-level-paper", "heft", "min-min", "min-load",
        "round-robin", "random"}) {
    auto s1 = make_scheduler(name, 9);
    auto s2 = make_scheduler(name, 9);
    auto t1 = (*s1)->schedule(graph, context);
    auto t2 = (*s2)->schedule(graph, context);
    ASSERT_TRUE(t1.has_value() && t2.has_value()) << name;
    ASSERT_EQ(t1->assignments.size(), t2->assignments.size()) << name;
    EXPECT_DOUBLE_EQ(t1->schedule_length, t2->schedule_length) << name;
    for (std::size_t i = 0; i < t1->assignments.size(); ++i) {
      EXPECT_EQ(t1->assignments[i].hosts, t2->assignments[i].hosts) << name;
      EXPECT_DOUBLE_EQ(t1->assignments[i].est_start,
                       t2->assignments[i].est_start)
          << name;
    }
  }
}

TEST_F(SchedFixture, RandomIsSeedDeterministic) {
  afg::Afg graph = make_shape("layered");
  RandomScheduler a(5), b(5);
  auto t1 = a.schedule(graph, context);
  auto t2 = b.schedule(graph, context);
  ASSERT_TRUE(t1.has_value() && t2.has_value());
  EXPECT_DOUBLE_EQ(t1->schedule_length, t2->schedule_length);
}

TEST_F(SchedFixture, TableDescribeMentionsEveryTask) {
  afg::Afg graph = afg::make_linear_solver_shape(1e5);
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  std::string text = table->describe(graph);
  for (const afg::TaskNode& t : graph.tasks()) {
    EXPECT_NE(text.find(t.instance_name), std::string::npos);
  }
}

TEST_F(SchedFixture, TableLookupHelpers) {
  afg::Afg graph = afg::make_chain(3, 100, 1e4);
  VdceSiteScheduler scheduler;
  auto table = scheduler.schedule(graph, context);
  ASSERT_TRUE(table.has_value());
  EXPECT_TRUE(table->find(common::TaskId(1)).has_value());
  EXPECT_FALSE(table->find(common::TaskId(99)).has_value());
  EXPECT_FALSE(table->hosts_used().empty());
  EXPECT_FALSE(table->sites_used().empty());
}

}  // namespace
}  // namespace vdce::sched
