// End-to-end integration tests: the full submit -> authenticate -> schedule
// -> distribute -> execute -> report pipeline, with real kernels, failure
// recovery, overload rescheduling, and the console service.
#include <gtest/gtest.h>

#include "afg/generate.hpp"
#include "editor/builder.hpp"
#include "tasklib/matrix.hpp"
#include "sched/support.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

EnvironmentOptions fast_options() {
  EnvironmentOptions options;
  options.runtime.monitor_period = 0.5;
  options.runtime.echo_period = 1.0;
  options.runtime.progress_period = 2.0;
  options.runtime.exec_noise_cv = 0.0;  // deterministic durations
  return options;
}

Session login(VdceEnvironment& env) {
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret");
  EXPECT_TRUE(session.has_value());
  return *session;
}

TEST(Environment, LoginRejectsBadCredentials) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  env.add_user("user_k", "secret");
  EXPECT_FALSE(env.login(common::SiteId(0), "user_k", "wrong").has_value());
  EXPECT_FALSE(env.login(common::SiteId(1), "ghost", "x").has_value());
  EXPECT_TRUE(env.login(common::SiteId(1), "user_k", "secret").has_value());
}

TEST(Environment, DistributedSchedulingProducesTable) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_linear_solver_shape(1e5);
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value()) << table.error().message;
  EXPECT_EQ(table->assignments.size(), graph.task_count());
  // The AFG multicast and the bids reply actually crossed the fabric.
  const auto& by_type = env.fabric().stats().sent_by_type;
  EXPECT_GE(by_type.at("sm.afg"), 1u);
  EXPECT_GE(by_type.at("sm.bids"), 1u);
}

TEST(Environment, LocalDomainUserSchedulesWithoutMulticast) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  env.add_user("loc", "pw", 1, db::AccessDomain::kLocalSite);
  auto session = env.login(common::SiteId(0), "loc", "pw").value();
  afg::Afg graph = afg::make_independent(4, 200);
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  for (const auto& a : table->assignments) EXPECT_EQ(a.site, common::SiteId(0));
  EXPECT_EQ(env.fabric().stats().sent_by_type.count("sm.afg"), 0u);
}

TEST(Environment, SchedulingSurvivesDeadRemoteSite) {
  // The remote site's server is dead: its bids never arrive, and the bid
  // deadline must release the scheduling round with local outputs only.
  auto options = fast_options();
  options.runtime.bid_timeout = 1.0;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  auto session = login(env);
  env.topology().set_host_up(env.topology().site(common::SiteId(1)).server,
                             false);

  afg::Afg graph = afg::make_independent(4, 300);
  double t0 = env.now();
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value()) << table.error().message;
  EXPECT_LE(env.now() - t0, 1.5);  // released by the deadline, not hung
  for (const auto& a : table->assignments) {
    EXPECT_EQ(a.site, common::SiteId(0));  // only local bids existed
  }
}

TEST(Environment, TimingOnlyExecutionCompletes) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  common::Rng rng(5);
  afg::LayeredDagSpec spec;
  spec.tasks = 25;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success) << report->failure_reason;
  EXPECT_EQ(report->outcomes.size(), graph.task_count());
  EXPECT_GT(report->makespan(), 0.0);
  EXPECT_GE(report->setup_time(), 0.0);
}

TEST(Environment, ExecutionRespectsPrecedence) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(5, 300, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->success);
  // Chain stages must finish in order.
  for (std::size_t i = 1; i < report->outcomes.size(); ++i) {
    EXPECT_GE(report->outcomes[i].started + 1e-9,
              report->outcomes[i - 1].finished);
  }
}

TEST(Environment, RealKernelLinearSolverComputesCorrectX) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);

  // Stage the user's input files in the VDCE store (I/O service).
  common::Rng rng(42);
  const std::size_t n = 24;
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  tasklib::Vector b(n);
  for (double& v : b) v = rng.uniform(-2, 2);
  env.store().put("/users/VDCE/user_k/matrix_A.dat", tasklib::Value(a),
                  a.size_bytes());
  env.store().put("/users/VDCE/user_k/vector_b.dat", tasklib::Value(b),
                  static_cast<double>(n * sizeof(double)));

  // Figure-1 pipeline via the editor API.
  editor::AppBuilder app("Linear Equation Solver");
  auto lu = app.task("LU_Decomposition", "matrix.lu_decomposition")
                .input_file("/users/VDCE/user_k/matrix_A.dat", a.size_bytes())
                .output_data(a.size_bytes());
  auto fwd = app.task("Forward_Substitution", "matrix.forward_substitution")
                 .output_data(a.size_bytes());
  auto bwd = app.task("Backward_Substitution", "matrix.backward_substitution")
                 .output_data(n * sizeof(double));
  ASSERT_TRUE(app.link(lu, fwd).has_value());
  // Forward substitution's second input is the rhs file.
  fwd.input_file("/users/VDCE/user_k/vector_b.dat",
                 static_cast<double>(n * sizeof(double)));
  ASSERT_TRUE(app.link(fwd, bwd).has_value());
  auto graph = app.build();
  ASSERT_TRUE(graph.has_value()) << graph.error().message;

  auto report = env.run_application(*graph, session);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  ASSERT_TRUE(report->success) << report->failure_reason;

  // The exit task's output is x with A x = b.
  auto bwd_id = graph->find_task("Backward_Substitution").value();
  ASSERT_TRUE(report->exit_outputs.contains(bwd_id.value()));
  auto x = std::any_cast<tasklib::Vector>(
      report->exit_outputs.at(bwd_id.value()));
  EXPECT_LT(tasklib::residual_inf(a, x, b), 1e-8);
}

TEST(Environment, OutputFilesLandInTheUserStore) {
  // Figure 1's vector_X.dat: a task with an output *file* binding writes
  // the produced value back to the user's VDCE file space via dm.output.
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);

  common::Rng rng(6);
  const std::size_t n = 16;
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  tasklib::Vector b(n);
  for (double& v : b) v = rng.uniform(-1, 1);
  env.store().put("/u/A.dat", tasklib::Value(a), a.size_bytes());
  env.store().put("/u/b.dat", tasklib::Value(b),
                  static_cast<double>(n * sizeof(double)));

  editor::AppBuilder app("writer");
  auto lu = app.task("LU", "matrix.lu_decomposition")
                .input_file("/u/A.dat", a.size_bytes())
                .output_data(a.size_bytes());
  auto fwd = app.task("Fwd", "matrix.forward_substitution")
                 .output_data(a.size_bytes());
  auto bwd = app.task("Bwd", "matrix.backward_substitution")
                 .output_file("/u/x.dat",
                              static_cast<double>(n * sizeof(double)));
  app.link(lu, fwd).value();
  fwd.input_file("/u/b.dat", static_cast<double>(n * sizeof(double)));
  app.link(fwd, bwd).value();
  auto graph = app.build().value();

  ASSERT_FALSE(env.store().contains("/u/x.dat"));
  auto report = env.run_application(graph, session, {});
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->success) << report->failure_reason;

  auto stored = env.store().get("/u/x.dat");
  ASSERT_TRUE(stored.has_value());
  auto x = std::any_cast<tasklib::Vector>(stored->value);
  EXPECT_LT(tasklib::residual_inf(a, x, b), 1e-8);
}

TEST(Environment, MissingStoreObjectFailsRealRun) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  editor::AppBuilder app("demo");
  (void)app.task("LU", "matrix.lu_decomposition")
      .input_file("/users/VDCE/user_k/missing.dat", 1000)
      .output_data(1000);
  auto graph = app.build();
  ASSERT_TRUE(graph.has_value());
  auto report = env.run_application(*graph, session);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kNotFound);
}

TEST(Environment, KernelErrorReportedAsFailure) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  // A singular matrix makes the LU kernel fail at runtime.
  tasklib::Matrix zeros(4, 4, 0.0);
  env.store().put("/users/VDCE/user_k/singular.dat", tasklib::Value(zeros),
                  zeros.size_bytes());
  editor::AppBuilder app("demo");
  (void)app.task("LU", "matrix.lu_decomposition")
      .input_file("/users/VDCE/user_k/singular.dat", zeros.size_bytes())
      .output_data(100);
  auto graph = app.build();
  auto report = env.run_application(*graph, session);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->success);
  EXPECT_NE(report->failure_reason.find("singular"), std::string::npos);
}

TEST(Environment, HostFailureMidRunIsSurvived) {
  auto options = fast_options();
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  auto session = login(env);

  // A long chain so there is plenty of time to kill a machine mid-run.
  afg::Afg graph = afg::make_chain(6, 3000, 1e5);
  RunOptions run;
  run.real_kernels = false;
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  // Kill the machine hosting the third stage shortly after execution
  // starts.
  common::HostId victim =
      table->find(graph.find_task("s2").value())->primary_host();
  // Ensure the victim is not the coordinator's server machine (it hosts the
  // Site Manager; killing it is a different experiment).
  if (victim == env.topology().site(common::SiteId(0)).server) {
    GTEST_SKIP() << "scheduler placed the stage on the server host";
  }
  env.engine().schedule(5.0,
                        [&] { env.topology().set_host_up(victim, false); });
  auto report = env.execute_with_table(graph, *table, session, run);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->failures_survived, 1);
  // The failed machine hosts nothing in the final outcome set.
  for (const auto& outcome : report->outcomes) {
    EXPECT_NE(outcome.host, victim);
  }
}

TEST(Environment, OverloadTriggersReschedule) {
  auto options = fast_options();
  options.runtime.overload_threshold = 2.0;
  options.runtime.controller_period = 0.5;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  auto session = login(env);

  afg::Afg graph = afg::make_independent(1, 20000);  // one long task
  RunOptions run;
  run.real_kernels = false;
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  common::HostId chosen = table->assignments[0].primary_host();
  // Slam the chosen machine with background load shortly after start.
  env.engine().schedule(10.0, [&] {
    env.topology().add_cpu_load(chosen, 5.0);
  });
  auto report = env.execute_with_table(graph, *table, session, run);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->success) << report->failure_reason;
  EXPECT_GE(report->reschedules, 1);
  EXPECT_NE(report->outcomes[0].host, chosen);
  EXPECT_GE(report->outcomes[0].attempts, 2);
}

TEST(Environment, SuspendDelaysExecution) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 1000, 1e4);
  RunOptions run;
  run.real_kernels = false;

  // Run once normally for a baseline makespan.
  auto baseline = env.run_application(graph, session, run);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(baseline->success);

  // Run again, suspending for 30 simulated seconds mid-flight.
  auto table = env.schedule(graph, session);
  ASSERT_TRUE(table.has_value());
  common::AppId next_app(2 + 1);  // apps 0..2 used above (2 schedules + run)
  (void)next_app;
  runtime::SiteManager& sm = env.site_manager(common::SiteId(0));
  env.engine().schedule(2.0, [&] {
    sm.suspend_application(common::AppId(3));
    env.engine().schedule(30.0,
                          [&] { sm.resume_application(common::AppId(3)); });
  });
  auto suspended = env.execute_with_table(graph, *table, session, run);
  ASSERT_TRUE(suspended.has_value());
  ASSERT_TRUE(suspended->success) << suspended->failure_reason;
  EXPECT_GT(suspended->makespan(), baseline->makespan() + 10.0);
}

TEST(Environment, MeasurementsSharpenPredictions) {
  // Run the same app twice; the second run's predictions use measured
  // history (recorded by the Site Manager) instead of the analytic model.
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 500, 1e4);
  RunOptions run;
  run.real_kernels = false;
  auto first = env.run_application(graph, session, run);
  ASSERT_TRUE(first.has_value());
  // Measured history now exists for the executed (task, host) pairs.
  bool any_measured = false;
  for (const auto& outcome : first->outcomes) {
    for (common::SiteId repo_site : {common::SiteId(0), common::SiteId(1)}) {
      auto m = env.repo(repo_site).tasks().measured(
          graph.task(outcome.task).task_name, outcome.host);
      if (m) any_measured = true;
    }
  }
  EXPECT_TRUE(any_measured);
  auto second = env.run_application(graph, session, run);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->success);
}

TEST(Environment, ExecutionChargesDataTransfers) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_chain(3, 200, 5e5);
  RunOptions run;
  run.real_kernels = false;
  env.fabric().reset_stats();
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  const auto& by_type = env.fabric().stats().sent_by_type;
  EXPECT_GE(by_type.at("dm.data"), 2u);       // two chain edges
  EXPECT_GE(by_type.at("ac.task_done"), 3u);  // one per task
  EXPECT_GE(by_type.at("sm.rat"), 1u);
  EXPECT_GE(by_type.at("gm.exec"), 1u);
}

TEST(Environment, ReportDescribeIsComplete) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg graph = afg::make_linear_solver_shape(1e4);
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  ASSERT_TRUE(report.has_value());
  std::string text = report->describe(graph);
  EXPECT_NE(text.find("SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("Gantt"), std::string::npos);
  for (const afg::TaskNode& t : graph.tasks()) {
    EXPECT_NE(text.find(t.instance_name), std::string::npos);
  }
}

TEST(Environment, ConcurrentApplicationsBothComplete) {
  VdceEnvironment env(make_campus_pair(), fast_options());
  env.bring_up();
  auto session = login(env);
  afg::Afg g1 = afg::make_chain(4, 500, 1e4);
  afg::Afg g2 = afg::make_independent(6, 400);
  auto t1 = env.schedule(g1, session);
  auto t2 = env.schedule(g2, session);
  ASSERT_TRUE(t1.has_value() && t2.has_value());

  // Launch both before driving the engine: they interleave on the fabric.
  bool done1 = false, done2 = false;
  runtime::ExecutionReport r1, r2;
  // Use the site manager directly to overlap executions.
  runtime::SiteManager& sm = env.site_manager(common::SiteId(0));
  std::vector<db::TaskPerfRecord> perf1, perf2;
  for (const afg::TaskNode& n : g1.tasks()) {
    perf1.push_back(*sched::resolve_perf(n, env.repo(common::SiteId(0)).tasks()));
  }
  for (const afg::TaskNode& n : g2.tasks()) {
    perf2.push_back(*sched::resolve_perf(n, env.repo(common::SiteId(0)).tasks()));
  }
  sm.execute_application(common::AppId(100), g1, *t1, perf1, {}, {},
                         [&](runtime::ExecutionReport r) {
                           r1 = std::move(r);
                           done1 = true;
                         });
  sm.execute_application(common::AppId(101), g2, *t2, perf2, {}, {},
                         [&](runtime::ExecutionReport r) {
                           r2 = std::move(r);
                           done2 = true;
                         });
  while (!(done1 && done2) && !env.engine().empty()) {
    env.engine().run_steps(512);
  }
  ASSERT_TRUE(done1 && done2);
  EXPECT_TRUE(r1.success);
  EXPECT_TRUE(r2.success);
}

}  // namespace
}  // namespace vdce
