// Unit + property tests for the task libraries: matrix algebra correctness,
// signal-processing correctness, and the registry.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "tasklib/matrix.hpp"
#include "tasklib/registry.hpp"
#include "tasklib/signal.hpp"

namespace vdce::tasklib {
namespace {

// ---- matrix ---------------------------------------------------------------------

TEST(Matrix, IdentityAndIndexing) {
  Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
}

TEST(Matrix, TransposeInvolution) {
  common::Rng rng(1);
  Matrix a = Matrix::random(4, 7, rng);
  EXPECT_DOUBLE_EQ(a.transpose().transpose().max_abs_diff(a), 0.0);
}

TEST(Matrix, MultiplyIdentity) {
  common::Rng rng(2);
  Matrix a = Matrix::random(5, 5, rng);
  auto prod = multiply(a, Matrix::identity(5));
  ASSERT_TRUE(prod.has_value());
  EXPECT_LT(prod->max_abs_diff(a), 1e-12);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  v = 1;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  auto c = multiply(a, b);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 22.0);
  EXPECT_DOUBLE_EQ((*c)(0, 1), 28.0);
  EXPECT_DOUBLE_EQ((*c)(1, 0), 49.0);
  EXPECT_DOUBLE_EQ((*c)(1, 1), 64.0);
}

TEST(Matrix, MultiplyDimensionMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_FALSE(multiply(a, b).has_value());
}

TEST(Matrix, ParallelMatchesSerial) {
  common::Rng rng(3);
  Matrix a = Matrix::random(120, 130, rng);
  Matrix b = Matrix::random(130, 110, rng);
  auto serial = multiply(a, b, 1);
  auto parallel = multiply(a, b, 4);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_LT(serial->max_abs_diff(*parallel), 1e-9);
}

TEST(Matrix, MatVec) {
  Matrix a = Matrix::identity(3);
  a(0, 2) = 2.0;
  auto y = multiply(a, Vector{1, 2, 3});
  ASSERT_TRUE(y.has_value());
  EXPECT_DOUBLE_EQ((*y)[0], 7.0);
  EXPECT_DOUBLE_EQ((*y)[1], 2.0);
  EXPECT_FALSE(multiply(a, Vector{1, 2}).has_value());
}

TEST(Lu, ReconstructsPA) {
  common::Rng rng(4);
  Matrix a = Matrix::random_diag_dominant(8, rng);
  auto lu = lu_decompose(a);
  ASSERT_TRUE(lu.has_value());
  // Rebuild L and U, check L*U == P*A.
  const std::size_t n = 8;
  Matrix l = Matrix::identity(n), u(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i > j) l(i, j) = lu->lu(i, j);
      if (i <= j) u(i, j) = lu->lu(i, j);
    }
  }
  auto prod = multiply(l, u);
  ASSERT_TRUE(prod.has_value());
  Matrix pa(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) pa(i, j) = a(lu->perm[i], j);
  }
  EXPECT_LT(prod->max_abs_diff(pa), 1e-10);
}

TEST(Lu, RejectsSingular) {
  Matrix zeros(3, 3, 0.0);
  EXPECT_FALSE(lu_decompose(zeros).has_value());
  Matrix rect(2, 3);
  EXPECT_FALSE(lu_decompose(rect).has_value());
}

TEST(Lu, DeterminantOfIdentity) {
  auto lu = lu_decompose(Matrix::identity(4));
  ASSERT_TRUE(lu.has_value());
  EXPECT_DOUBLE_EQ(lu->determinant(), 1.0);
}

class SolveProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolveProperty, ResidualTiny) {
  common::Rng rng(GetParam());
  const std::size_t n = 4 + GetParam() * 7;
  Matrix a = Matrix::random_diag_dominant(n, rng);
  Vector b(n);
  for (double& v : b) v = rng.uniform(-5, 5);
  auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(residual_inf(a, *x, b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Solve, PipelineStagesMatchDirectSolve) {
  // The Figure-1 decomposition: lu -> forward -> backward equals solve().
  common::Rng rng(9);
  Matrix a = Matrix::random_diag_dominant(12, rng);
  Vector b(12);
  for (double& v : b) v = rng.uniform(-1, 1);
  auto lu = lu_decompose(a);
  ASSERT_TRUE(lu.has_value());
  Vector y = forward_substitute(*lu, b);
  Vector x1 = backward_substitute(*lu, y);
  auto x2 = solve(a, b);
  ASSERT_TRUE(x2.has_value());
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x1[i], (*x2)[i], 1e-12);
}

TEST(Solve, RhsLengthMismatch) {
  EXPECT_FALSE(solve(Matrix::identity(3), Vector{1, 2}).has_value());
}

// ---- signal ----------------------------------------------------------------------

TEST(Fft, RejectsNonPowerOfTwoInPlace) {
  Spectrum s(3);
  EXPECT_FALSE(fft_inplace(s).ok());
  Spectrum empty;
  EXPECT_FALSE(fft_inplace(empty).ok());
}

TEST(Fft, PadsToPowerOfTwo) {
  Signal s(5, 1.0);
  auto spec = fft(s);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->size(), 8u);
}

TEST(Fft, RoundTripRecoversSignal) {
  common::Rng rng(5);
  Signal s(64);
  for (double& v : s) v = rng.uniform(-1, 1);
  auto spec = fft(s);
  ASSERT_TRUE(spec.has_value());
  auto back = ifft_real(*spec);
  ASSERT_TRUE(back.has_value());
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_NEAR((*back)[i], s[i], 1e-10);
}

TEST(Fft, PureToneConcentratesAtBin) {
  const std::size_t n = 128;
  Signal s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = std::sin(2.0 * std::numbers::pi * 8.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  auto spec = fft(s);
  ASSERT_TRUE(spec.has_value());
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n / 2; ++i) {
    if (std::abs((*spec)[i]) > std::abs((*spec)[peak])) peak = i;
  }
  EXPECT_EQ(peak, 8u);
}

TEST(Fft, ParsevalHolds) {
  common::Rng rng(6);
  Signal s(256);
  for (double& v : s) v = rng.uniform(-1, 1);
  auto spec = fft(s);
  ASSERT_TRUE(spec.has_value());
  double freq_energy = 0.0;
  for (const auto& c : *spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 256.0, energy(s), 1e-8);
}

TEST(Fir, ImpulseResponseIsTaps) {
  Signal taps{0.5, 0.25, 0.125};
  Signal impulse(8, 0.0);
  impulse[0] = 1.0;
  Signal out = fir_filter(impulse, taps);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.125);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(Fir, LowpassAttenuatesHighFrequency) {
  auto taps = design_lowpass(0.1, 63);
  ASSERT_TRUE(taps.has_value());
  const std::size_t n = 512;
  Signal low(n), high(n);
  for (std::size_t i = 0; i < n; ++i) {
    low[i] = std::sin(2.0 * std::numbers::pi * 0.02 * static_cast<double>(i));
    high[i] = std::sin(2.0 * std::numbers::pi * 0.4 * static_cast<double>(i));
  }
  // Compare steady-state energy (skip the filter warm-up).
  auto tail_energy = [](const Signal& s) {
    double acc = 0;
    for (std::size_t i = 100; i < s.size(); ++i) acc += s[i] * s[i];
    return acc;
  };
  double low_pass = tail_energy(fir_filter(low, *taps));
  double high_pass = tail_energy(fir_filter(high, *taps));
  EXPECT_GT(low_pass, 100.0 * high_pass);
}

TEST(Fir, LowpassDesignValidation) {
  EXPECT_FALSE(design_lowpass(0.0, 21).has_value());
  EXPECT_FALSE(design_lowpass(0.5, 21).has_value());
  EXPECT_FALSE(design_lowpass(0.1, 2).has_value());
}

TEST(Beamform, AlignedDelaysReinforce) {
  // Three copies of a pulse at offsets 0,1,2; delays undo the offsets.
  Signal base(16, 0.0);
  base[5] = 1.0;
  std::vector<Signal> channels(3, Signal(16, 0.0));
  channels[0][5] = 1.0;
  channels[1][6] = 1.0;
  channels[2][7] = 1.0;
  auto out = beamform(channels, {0, -1, -2});
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ((*out)[5], 1.0);  // perfect coherent sum / 3 * 3
}

TEST(Beamform, Validation) {
  EXPECT_FALSE(beamform({}, {}).has_value());
  EXPECT_FALSE(beamform({Signal(4)}, {0, 1}).has_value());
  EXPECT_FALSE(beamform({Signal(4), Signal(5)}, {0, 0}).has_value());
}

TEST(Detect, FindsThresholdCrossings) {
  Signal s{0.1, -0.9, 0.2, 0.95, -0.05};
  auto hits = detect(s, 0.5);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 3u);
}

TEST(Signal, TestSignalContainsTone) {
  common::Rng rng(7);
  Signal s = make_test_signal(256, {0.1}, 0.01, rng);
  auto spec = fft(s);
  ASSERT_TRUE(spec.has_value());
  std::size_t expected_bin = static_cast<std::size_t>(0.1 * 256);
  std::size_t peak = 1;
  for (std::size_t i = 1; i < 128; ++i) {
    if (std::abs((*spec)[i]) > std::abs((*spec)[peak])) peak = i;
  }
  EXPECT_NEAR(static_cast<double>(peak), static_cast<double>(expected_bin), 1.0);
}

TEST(Signal, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

// ---- registry -----------------------------------------------------------------------

TEST(Registry, StandardLibrariesPresent) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto libs = registry.libraries();
  ASSERT_EQ(libs.size(), 3u);
  EXPECT_EQ(libs[0], "image");
  EXPECT_EQ(libs[1], "matrix");
  EXPECT_EQ(libs[2], "signal");
  EXPECT_GE(registry.tasks_in_library("matrix").size(), 5u);
  EXPECT_GE(registry.tasks_in_library("signal").size(), 4u);
}

TEST(Registry, FindsRegisteredAndRejectsUnknown) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  EXPECT_TRUE(registry.find("matrix.multiply").has_value());
  EXPECT_FALSE(registry.find("matrix.nope").has_value());
}

TEST(Registry, SynthesizesSyntheticTasks) {
  TaskRegistry registry;
  auto impl = registry.find("synthetic.w500");
  ASSERT_TRUE(impl.has_value());
  EXPECT_DOUBLE_EQ(impl->perf.computation_mflop, 500.0);
  EXPECT_DOUBLE_EQ(impl->perf.base_exec_time, 5.0);  // 500 / base 100
  ASSERT_TRUE(impl->kernel);
  auto out = impl->kernel({Value(42)});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::any_cast<int>((*out)[0]), 42);
}

TEST(Registry, ParseSyntheticName) {
  EXPECT_DOUBLE_EQ(parse_synthetic_mflop("lib.w250").value(), 250.0);
  EXPECT_FALSE(parse_synthetic_mflop("matrix.multiply").has_value());
  EXPECT_FALSE(parse_synthetic_mflop("lib.w-5").has_value());
  EXPECT_FALSE(parse_synthetic_mflop("w100").has_value());
}

TEST(Registry, SeedsDatabase) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  db::TaskPerformanceDb database;
  registry.seed_database(database);
  EXPECT_EQ(database.size(), registry.size());
  EXPECT_TRUE(database.contains("matrix.lu_decomposition"));
}

TEST(Registry, MatrixMultiplyKernelComputes) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto impl = registry.find("matrix.multiply");
  ASSERT_TRUE(impl.has_value());
  Matrix a = Matrix::identity(3);
  a(0, 0) = 2.0;
  auto out = impl->kernel({Value(a), Value(Matrix::identity(3))});
  ASSERT_TRUE(out.has_value());
  auto c = std::any_cast<Matrix>((*out)[0]);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
}

TEST(Registry, KernelRejectsWrongArity) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto impl = registry.find("matrix.multiply");
  auto out = impl->kernel({Value(Matrix::identity(2))});
  EXPECT_FALSE(out.has_value());
}

TEST(Registry, KernelRejectsWrongType) {
  TaskRegistry registry;
  register_standard_libraries(registry);
  auto impl = registry.find("signal.fft");
  auto out = impl->kernel({Value(Matrix::identity(2))});
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(Registry, SolverChainThroughKernels) {
  // Drive the Figure-1 pipeline purely through registry kernels.
  TaskRegistry registry;
  register_standard_libraries(registry);
  common::Rng rng(11);
  Matrix a = Matrix::random_diag_dominant(6, rng);
  Vector b(6);
  for (double& v : b) v = rng.uniform(-1, 1);

  auto lu_impl = registry.find("matrix.lu_decomposition");
  auto fwd_impl = registry.find("matrix.forward_substitution");
  auto bwd_impl = registry.find("matrix.backward_substitution");
  auto lu_out = lu_impl->kernel({Value(a)});
  ASSERT_TRUE(lu_out.has_value());
  auto fwd_out = fwd_impl->kernel({(*lu_out)[0], Value(b)});
  ASSERT_TRUE(fwd_out.has_value());
  auto bwd_out = bwd_impl->kernel({(*fwd_out)[0]});
  ASSERT_TRUE(bwd_out.has_value());
  auto x = std::any_cast<Vector>((*bwd_out)[0]);
  EXPECT_LT(residual_inf(a, x, b), 1e-9);
}

}  // namespace
}  // namespace vdce::tasklib
