// E1 — §3 claim: level-based, prediction-driven list scheduling minimizes
// schedule length.
//
// Sweeps graph shapes (layered, fork-join, chain, bag, reduction) over a
// heterogeneous 4-site testbed and reports mean estimated schedule length
// per scheduler, normalized against VDCE.  Includes the level-ablation:
// vdce-level vs min-min (no levels, greedy batch) and vs the
// paper-objective variant.
#include <memory>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "db/site_repository.hpp"
#include "sched/baselines.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

afg::Afg make_shape(const std::string& shape, std::uint64_t seed) {
  common::Rng rng(seed);
  if (shape == "layered") {
    afg::LayeredDagSpec spec;
    spec.tasks = 60;
    spec.width = 8;
    return afg::make_layered_dag(spec, rng);
  }
  if (shape == "forkjoin") return afg::make_fork_join(8, 4, 600, 2e5);
  if (shape == "chain") return afg::make_chain(16, 800, 2e5);
  if (shape == "bag") return afg::make_independent(40, 1200);
  return afg::make_reduction_tree(16, 500, 2e5);
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("E1", "schedule length by scheduler and graph shape");
  bench::print_note(
      "Cells: mean schedule length over 6 seeds, normalized to vdce-level\n"
      "(1.00 = VDCE; higher = worse).  Absolute VDCE seconds in parens.");

  TestbedSpec tb;
  tb.sites = 4;
  tb.hosts_per_site = 8;
  tb.seed = 31;
  net::Topology topology = make_testbed(tb);
  tasklib::TaskRegistry registry;
  tasklib::register_standard_libraries(registry);
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  for (const net::Site& site : topology.sites()) {
    auto repo = std::make_unique<db::SiteRepository>(site.id);
    repo->register_site_hosts(topology);
    registry.seed_database(repo->tasks());
    repos.push_back(std::move(repo));
  }
  predict::Predictor predictor;
  sched::SchedulerContext context;
  context.topology = &topology;
  for (auto& r : repos) context.repos.push_back(r.get());
  context.predictor = &predictor;
  context.local_site = common::SiteId(0);
  context.k_nearest = 3;

  const std::vector<std::string> schedulers{
      "vdce-level", "heft",     "vdce-level-paper", "min-min",
      "min-load",   "round-robin", "random"};
  const std::vector<std::string> shapes{"layered", "forkjoin", "chain", "bag",
                                        "reduce"};

  std::vector<std::string> headers{"shape"};
  headers.insert(headers.end(), schedulers.begin(), schedulers.end());
  bench::Table table(headers);

  for (const std::string& shape : shapes) {
    std::vector<double> mean(schedulers.size(), 0.0);
    constexpr int kSeeds = 6;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      afg::Afg graph = make_shape(shape, 100 + seed);
      for (std::size_t s = 0; s < schedulers.size(); ++s) {
        auto scheduler = sched::make_scheduler(schedulers[s], seed);
        auto result = (*scheduler)->schedule(graph, context);
        if (result) mean[s] += result->schedule_length / kSeeds;
      }
    }
    std::vector<std::string> row{shape};
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      std::string cell = bench::Table::num(mean[s] / mean[0], 2);
      if (s == 0) cell += " (" + bench::Table::num(mean[0], 1) + "s)";
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  table.print();

  bench::print_note(
      "\nExpected shape: heft <= vdce-level <= min-min < min-load <\n"
      "round-robin ~ random on DAGs (heft adds comm-aware ranks +\n"
      "insertion); the paper objective trails the availability-aware\n"
      "variant on wide graphs (it ignores machine occupancy).");
  return 0;
}
