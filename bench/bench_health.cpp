// E14 — the health plane scored against chaos ground truth.
//
// A fixed fault corpus (crashes, a partition, a stale-monitor window, a
// load spike, a degraded link) runs against the default rule set while the
// rule sensitivity sweeps from hair-trigger (0.1) to conservative (2.0).
// For each setting: per-fault-class detection recall and mean latency,
// alert-level precision, and the false-positive count.  The expected shape
// is the classic detector trade-off — low sensitivity detects fastest but
// pays for it in false positives; high sensitivity goes quiet in both
// columns.
//
// Emits a JSON object on stdout and writes it to BENCH_HEALTH.json for CI
// artifact upload.
//
// Flags:
//   --smoke   fewer sensitivity settings, shorter horizon (CI signal)
//   --check   exit non-zero unless, at sensitivity 1.0, crash and partition
//             recall are both >= 0.9 with zero false-positive alerts, and a
//             second identical run reproduces the score table and the alert
//             log byte for byte
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/health.hpp"
#include "vdce/vdce.hpp"

namespace {

namespace health = vdce::obs::health;

std::string json_num(double v) { return vdce::bench::json_num(v); }

struct SweepResult {
  double sensitivity = 1.0;
  health::DetectionScore score;
  std::string alert_log;
  std::size_t alerts = 0;
};

/// The corpus: every fault class, windows long enough for the default rule
/// cadences, and only non-server hosts crash (site servers carry the Site
/// Managers and the probe endpoints).
vdce::chaos::FaultPlan make_corpus() {
  vdce::chaos::FaultPlan plan;
  plan.name("health-corpus")
      .seed(11)
      .crash(vdce::common::HostId(2), 5.0, 10.0)
      .stale_host(vdce::common::HostId(9), 8.0, 10.0)
      .slow(vdce::common::HostId(4), 12.0, 12.0, 4.0)
      .partition(0, 1, 18.0, 10.0)
      .crash(vdce::common::HostId(11), 30.0, 9.0)
      .degrade(0, 1, 32.0, 8.0, 20.0, 1.0);
  return plan;
}

SweepResult run_corpus(double sensitivity, double horizon) {
  using namespace vdce;
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.metrics.enabled = true;
  options.trace.enabled = true;
  options.health.enabled = true;
  options.health.sensitivity = sensitivity;
  options.faults = make_corpus();

  VdceEnvironment env(make_campus_pair(13), options);
  env.bring_up();
  env.run_for(horizon);

  health::DetectionOptions scoring;
  scoring.horizon = horizon;
  SweepResult result;
  result.sensitivity = sensitivity;
  result.score = health::score_detections(env.chaos()->ground_truth(),
                                          env.health().alerts(), scoring);
  result.alert_log = health::render_alerts(env.health().alerts());
  result.alerts = env.health().alerts().size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdce;
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const double horizon = 45.0;
  const std::vector<double> sweep =
      smoke ? std::vector<double>{0.25, 1.0}
            : std::vector<double>{0.1, 0.25, 0.5, 1.0, 2.0};

  bench::print_title("E14", "health plane: detection vs rule sensitivity");
  bench::print_note(
      "12 hosts, " + bench::Table::num(horizon, 0) +
      "s horizon, 6-fault corpus (2 crashes, stale window, load spike,\n"
      "partition, degraded link), default rules.  sensitivity < 1 is\n"
      "hair-trigger, > 1 conservative.");

  bench::Table table({"sensitivity", "alerts", "fp", "precision", "crash",
                      "partition", "slow", "stale", "latency (s)"});
  std::string json = "{\"bench\":\"health\",\"horizon_s\":" +
                     json_num(horizon) + ",\"sweep\":[";

  std::vector<SweepResult> results;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    results.push_back(run_corpus(sweep[i], horizon));
    const SweepResult& r = results.back();

    auto recall = [&](const char* cls) {
      auto it = r.score.by_class.find(cls);
      return it == r.score.by_class.end() ? 1.0 : it->second.recall();
    };
    common::Stats latency;
    for (const health::FaultDetection& d : r.score.faults) {
      if (d.detected) latency.add(d.latency);
    }
    table.add_row({bench::Table::num(r.sensitivity, 2),
                   std::to_string(r.alerts),
                   std::to_string(r.score.false_positive_alerts),
                   bench::Table::num(r.score.precision(), 2),
                   bench::Table::num(recall("crash"), 2),
                   bench::Table::num(recall("partition"), 2),
                   bench::Table::num(recall("slow"), 2),
                   bench::Table::num(recall("stale"), 2),
                   bench::Table::num(latency.mean(), 2)});

    if (i > 0) json += ",";
    json += "{\"sensitivity\":" + json_num(r.sensitivity) +
            ",\"alerts\":" + std::to_string(r.alerts) +
            ",\"true_positive_alerts\":" +
            std::to_string(r.score.true_positive_alerts) +
            ",\"false_positive_alerts\":" +
            std::to_string(r.score.false_positive_alerts) +
            ",\"precision\":" + json_num(r.score.precision()) +
            ",\"mean_latency_s\":" + json_num(latency.mean()) +
            ",\"by_class\":{";
    bool first_class = true;
    for (const auto& [cls, cs] : r.score.by_class) {
      if (!first_class) json += ",";
      first_class = false;
      json += "\"" + cls + "\":{\"total\":" + std::to_string(cs.total) +
              ",\"detected\":" + std::to_string(cs.detected) +
              ",\"recall\":" + json_num(cs.recall()) + "}";
    }
    json += "}}";
  }
  json += "]}";
  table.print();

  bench::print_note(
      "\nExpected shape: recall holds near 1.0 for crash/partition/stale\n"
      "across the sweep (their staleness signals are unambiguous) while\n"
      "false positives explode below sensitivity ~0.5, where the stale\n"
      "window undercuts the 1 Hz sampling period.");
  std::printf("\n%s\n", json.c_str());

  if (FILE* f = std::fopen("BENCH_HEALTH.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    const SweepResult* nominal = nullptr;
    for (const SweepResult& r : results) {
      if (r.sensitivity == 1.0) nominal = &r;
    }
    if (nominal == nullptr) {
      std::printf("check: FAILED (sweep did not include sensitivity 1.0)\n");
      return 1;
    }
    auto class_recall = [&](const char* cls) {
      auto it = nominal->score.by_class.find(cls);
      return it == nominal->score.by_class.end() ? 1.0 : it->second.recall();
    };
    if (class_recall("crash") < 0.9 || class_recall("partition") < 0.9) {
      std::printf("check: FAILED (crash recall %.2f, partition recall %.2f; "
                  "need >= 0.9)\n%s",
                  class_recall("crash"), class_recall("partition"),
                  nominal->score.render().c_str());
      return 1;
    }
    if (nominal->score.false_positive_alerts != 0) {
      std::printf("check: FAILED (%zu false-positive alerts at nominal "
                  "sensitivity)\n%s",
                  nominal->score.false_positive_alerts,
                  nominal->alert_log.c_str());
      return 1;
    }
    // Bit-for-bit reproducibility: a second identical run must reproduce
    // the alert log and the score table (detection latencies included).
    SweepResult rerun = run_corpus(1.0, horizon);
    if (rerun.alert_log != nominal->alert_log ||
        rerun.score.render() != nominal->score.render()) {
      std::printf("check: FAILED (second run diverges)\n--- first ---\n%s"
                  "--- second ---\n%s",
                  nominal->score.render().c_str(), rerun.score.render().c_str());
      return 1;
    }
    std::printf("check: ok (crash %.2f / partition %.2f recall, 0 false "
                "positives, rerun bit-identical)\n",
                class_recall("crash"), class_recall("partition"));
  }
  return 0;
}
