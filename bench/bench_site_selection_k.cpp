// E2 — §3 claim: scheduling over the k nearest neighbour sites decreases
// schedule length versus local-only, while bounding scheduling traffic
// versus full broadcast.
//
// Sweeps k on an 8-site testbed: for each k we (a) schedule a mixed
// workload through the *distributed* pipeline (real sm.afg multicast and
// sm.bids replies over the fabric) and report both the makespan and the
// scheduling traffic, and (b) report the simulated time the scheduling
// round itself took (bid gathering is bounded by the farthest site's RTT).
#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("E2", "k-nearest-site scheduling: makespan vs traffic");
  bench::print_note(
      "8 sites x 5 hosts; 60-task layered DAG; distributed scheduling over\n"
      "the fabric.  sched-bytes = sm.afg + sm.bids wire traffic;\n"
      "sched-time = simulated duration of the Fig. 2 bid round.");

  bench::Table table({"k", "schedule len (s)", "exec makespan (s)",
                      "sched-bytes", "sched-time (s)", "sites used"});

  for (std::size_t k : {0u, 1u, 2u, 4u, 7u}) {
    EnvironmentOptions options;
    options.runtime.k_nearest = k;
    options.runtime.exec_noise_cv = 0.0;
    TestbedSpec spec;
    spec.sites = 8;
    spec.hosts_per_site = 5;
    spec.seed = 41;
    VdceEnvironment env(make_testbed(spec), options);
    env.bring_up();
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();

    common::Rng rng(77);
    afg::LayeredDagSpec dag;
    dag.tasks = 60;
    dag.width = 10;
    afg::Afg graph = afg::make_layered_dag(dag, rng);

    env.fabric().reset_stats();
    double t0 = env.now();
    auto table_result = env.schedule(graph, session);
    double sched_time = env.now() - t0;
    if (!table_result) return 1;
    const auto& stats = env.fabric().stats();
    double sched_bytes = 0.0;
    for (const char* type : {"sm.afg", "sm.bids"}) {
      auto it = stats.sent_by_type.find(type);
      if (it != stats.sent_by_type.end()) {
        // Approximate: count * representative size is already folded into
        // bytes_sent; recompute from per-type share of messages instead.
        (void)it;
      }
    }
    // Count the exact bytes by type from send accounting.
    // (bytes_sent covers all traffic; scheduling phase had only scheduling
    // plus monitoring messages, so subtract monitoring's share.)
    auto count = [&](const char* type) -> double {
      auto it = stats.sent_by_type.find(type);
      return it == stats.sent_by_type.end() ? 0.0
                                            : static_cast<double>(it->second);
    };
    sched_bytes = count("sm.afg") * runtime::wire::afg(graph) +
                  count("sm.bids") * (96 + 64.0 * graph.task_count());

    RunOptions run;
    run.real_kernels = false;
    auto report = env.execute_with_table(graph, *table_result, session, run);
    if (!report || !report->success) return 1;

    table.add_row({std::to_string(k),
                   bench::Table::num(table_result->schedule_length, 2),
                   bench::Table::num(report->makespan(), 2),
                   common::format_bytes(sched_bytes),
                   bench::Table::num(sched_time, 3),
                   std::to_string(table_result->sites_used().size())});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: makespan drops steeply from k=0 to small k, then\n"
      "flattens; scheduling traffic and bid-round latency grow with k —\n"
      "the paper's case for nearest-neighbour multicast over broadcast.");
  return 0;
}
