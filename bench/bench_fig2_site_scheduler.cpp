// Figure 2 reproduction: the Site Scheduler Algorithm.
//
// The figure is pseudocode; the reproducible artifact is its behaviour.
// This bench runs the algorithm (both the literal paper objective and the
// availability-aware variant) over random layered DAGs on multi-site
// testbeds, sweeping application size and site count, and reports the
// schedule length it minimizes, against the Fig. 2-relevant ablations:
// local-site-only scheduling (k = 0) and the paper-literal objective.
#include <memory>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "db/site_repository.hpp"
#include "sched/baselines.hpp"
#include "sched/site_scheduler.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct Setup {
  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  tasklib::TaskRegistry registry;
  predict::Predictor predictor;
  sched::SchedulerContext context;
};

std::unique_ptr<Setup> make_setup(std::size_t sites, std::size_t hosts,
                                  std::uint64_t seed) {
  auto setup = std::make_unique<Setup>();
  TestbedSpec spec;
  spec.sites = sites;
  spec.hosts_per_site = hosts;
  spec.seed = seed;
  setup->topology = make_testbed(spec);
  tasklib::register_standard_libraries(setup->registry);
  for (const net::Site& site : setup->topology.sites()) {
    auto repo = std::make_unique<db::SiteRepository>(site.id);
    repo->register_site_hosts(setup->topology);
    setup->registry.seed_database(repo->tasks());
    setup->repos.push_back(std::move(repo));
  }
  setup->context.topology = &setup->topology;
  for (auto& r : setup->repos) setup->context.repos.push_back(r.get());
  setup->context.predictor = &setup->predictor;
  setup->context.local_site = common::SiteId(0);
  setup->context.k_nearest = sites - 1;
  return setup;
}

double mean_makespan(sched::Scheduler& scheduler,
                     const sched::SchedulerContext& context,
                     std::size_t tasks, int trials) {
  common::Stats stats;
  for (int t = 0; t < trials; ++t) {
    common::Rng rng(1000 + static_cast<std::uint64_t>(t));
    afg::LayeredDagSpec spec;
    spec.tasks = tasks;
    spec.width = 8;
    afg::Afg graph = afg::make_layered_dag(spec, rng);
    auto table = scheduler.schedule(graph, context);
    if (table) stats.add(table->schedule_length);
  }
  return stats.empty() ? -1.0 : stats.mean();
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("Fig. 2", "Site Scheduler Algorithm — schedule length");
  bench::print_note(
      "Mean estimated schedule length (s) over 5 random layered DAGs per "
      "cell.\nvdce-level = availability-aware Fig. 2; vdce-level-paper = "
      "literal Fig. 2\nobjective; vdce-local = no remote sites (ablation of "
      "steps 2-5).");

  constexpr int kTrials = 5;

  {
    bench::Table table({"tasks", "vdce-level", "vdce-level-paper",
                        "vdce-local", "min-min", "random"});
    auto setup = make_setup(4, 8, 7);
    for (std::size_t tasks : {20u, 50u, 100u, 200u}) {
      std::vector<std::string> row{std::to_string(tasks)};
      for (const char* name : {"vdce-level", "vdce-level-paper", "vdce-local",
                               "min-min", "random"}) {
        auto scheduler = sched::make_scheduler(name);
        row.push_back(bench::Table::num(
            mean_makespan(**scheduler, setup->context, tasks, kTrials), 2));
      }
      table.add_row(std::move(row));
    }
    std::puts("\n-- 4 sites x 8 hosts, application size sweep --");
    table.print();
  }

  {
    bench::Table table({"sites", "vdce-level", "vdce-local", "min-min"});
    for (std::size_t sites : {1u, 2u, 4u, 8u, 16u}) {
      auto setup = make_setup(sites, 6, 11);
      std::vector<std::string> row{std::to_string(sites)};
      for (const char* name : {"vdce-level", "vdce-local", "min-min"}) {
        auto scheduler = sched::make_scheduler(name);
        row.push_back(bench::Table::num(
            mean_makespan(**scheduler, setup->context, 80, kTrials), 2));
      }
      table.add_row(std::move(row));
    }
    std::puts("\n-- 80-task DAG, site-count sweep (6 hosts/site) --");
    table.print();
  }

  return 0;
}
