// E15 — advance reservations and conservative backfill
// (docs/RESERVATIONS.md): walk-in latency and window fidelity vs. booking
// density, with backfill off and on.
//
// For each configuration the bench brings up a generated grid, commits
// `bookings` future windows (three non-server machines each, staggered
// starts), submits one reserved application per window at t=0 (each parks
// until its window opens) plus a fleet of walk-in filler applications, and
// drains.  Reported per configuration:
//
//   * completed owners / fillers and p50 / max filler submit->complete
//     latency — the cost walk-ins pay for pending windows, and what
//     conservative backfill buys back;
//   * the owners' release delay (released minus window start — exactly zero
//     when the window plumbing is honest) and first-task start delay;
//   * a window-exclusivity audit: no filler task interval may overlap
//     [window.start, owner completion) on a booked machine (after the owner
//     finalizes, the spent window is cancelled and the machines are free).
//
// Emits a JSON object on stdout and writes BENCH_RESERVATIONS.json for CI
// artifact upload.
//
// Flags:
//   --smoke   fewer/smaller configurations (CI per-commit signal)
//   --check   exit non-zero unless every application completed, every owner
//             was released exactly at its window start, no filler task
//             violated a committed window (the no-delay invariant: enabling
//             backfill must not move any owner's start), and the flagship
//             configuration replays byte-identically
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "editor/builder.hpp"
#include "scale/generate.hpp"
#include "vdce/environment.hpp"

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fan-out owner application: long enough that the window matters.
afg::Afg owner_app(const std::string& name) {
  editor::AppBuilder app(name);
  auto head = app.task("head", "synthetic.w200").output_data(2e4);
  auto tail = app.task("tail", "synthetic.w200");
  for (int i = 0; i < 3; ++i) {
    auto body = app.task("body" + std::to_string(i), "synthetic.w600")
                    .output_data(2e4);
    if (!app.link(head, body) || !app.link(body, tail)) std::abort();
  }
  return app.build().value();
}

/// Small walk-in filler: two chained tasks, cheap enough to backfill.
afg::Afg filler_app(const std::string& name) {
  editor::AppBuilder app(name);
  auto a = app.task("a", "synthetic.w150").output_data(1e4);
  auto b = app.task("b", "synthetic.w150");
  if (!app.link(a, b)) std::abort();
  return app.build().value();
}

/// One committed window plus what its owner actually did.
struct OwnerOutcome {
  double window_start = 0.0;
  double window_end = 0.0;
  std::vector<std::uint32_t> hosts;
  double released = 0.0;     ///< when the runtime released the parked app
  double first_start = 0.0;  ///< earliest task start
  double completed = 0.0;    ///< owner finalize (spent window cancelled here)
  bool success = false;
};

struct Measurement {
  std::size_t bookings = 0;
  bool backfill = false;
  std::size_t owners_completed = 0;
  std::size_t fillers_completed = 0;
  std::size_t fillers_submitted = 0;
  double filler_p50 = 0.0;
  double filler_max = 0.0;
  double release_delay_max = 0.0;  ///< max |released - window.start|
  double start_delay_max = 0.0;    ///< max first task start - window.start
  double reservation_wait = 0.0;   ///< summed owner reservation phase
  double wall_ms = 0.0;
  bool window_exclusive = false;
  bool all_success = false;
  std::vector<double> owner_starts;  ///< per-owner first_start, booking order
  std::string trace_jsonl;           ///< only when `want_trace`
};

Measurement measure(std::size_t bookings, bool backfill, bool smoke,
                    bool want_trace) {
  Measurement m;
  m.bookings = bookings;
  m.backfill = backfill;
  const double t0 = now_ms();

  ScaleSpec spec;
  spec.grid.sites = smoke ? 2 : 3;
  spec.grid.hosts_per_site = smoke ? 6 : 10;
  spec.grid.seed = 41;
  spec.options.runtime.exec_noise_cv = 0.0;
  spec.options.trace.enabled = want_trace;
  auto env = VdceEnvironment::make_scale_environment(spec);
  if (!env) {
    std::fprintf(stderr, "bring-up failed: %s\n",
                 env.error().to_string().c_str());
    return m;
  }
  auto session =
      (*env)->login(common::SiteId(0), spec.admin_user, spec.admin_password);
  if (!session) {
    std::fprintf(stderr, "login failed: %s\n",
                 session.error().to_string().c_str());
    return m;
  }

  // Book `bookings` windows over disjoint triples of non-server machines,
  // starts staggered so the release cascade is visible in the trace.
  std::vector<common::HostId> pool;
  for (const net::Site& s : (*env)->sites()) {
    for (common::HostId h : s.hosts) {
      if (h != s.server) pool.push_back(h);
    }
  }
  std::vector<OwnerOutcome> owners;
  std::vector<AppHandle> owner_handles;
  std::vector<afg::Afg> owner_graphs;
  for (std::size_t b = 0; b < bookings; ++b) {
    OwnerOutcome o;
    o.window_start = 40.0 + 15.0 * static_cast<double>(b);
    o.window_end = o.window_start + 200.0;
    ReservationRequest request;
    for (std::size_t k = 0; k < 3; ++k) {
      const common::HostId h = pool[(3 * b + k) % pool.size()];
      request.hosts.push_back(h);
      o.hosts.push_back(h.value());
    }
    request.start = o.window_start;
    request.end = o.window_end;
    auto ticket = (*env)->reserve(*session, request);
    if (!ticket) {
      std::fprintf(stderr, "reserve failed: %s\n",
                   ticket.error().to_string().c_str());
      return m;
    }
    RunOptions run;
    run.real_kernels = false;
    run.reservation = *ticket;
    owner_graphs.push_back(owner_app("owner" + std::to_string(b)));
    auto handle =
        (*env)->submit_application(owner_graphs.back(), *session, run);
    if (!handle) {
      std::fprintf(stderr, "owner submit failed: %s\n",
                   handle.error().to_string().c_str());
      return m;
    }
    owner_handles.push_back(*handle);
    owners.push_back(std::move(o));
  }

  // Walk-in fleet, submitted while every window is still pending.
  const std::size_t fillers = smoke ? 4 : 8;
  std::vector<AppHandle> filler_handles;
  for (std::size_t f = 0; f < fillers; ++f) {
    RunOptions run;
    run.real_kernels = false;
    run.sched.backfill = backfill;  // per-run knob (docs/RESERVATIONS.md)
    auto handle = (*env)->submit_application(
        filler_app("filler" + std::to_string(f)), *session, run);
    ++m.fillers_submitted;
    if (!handle) {
      std::fprintf(stderr, "filler submit rejected: %s\n",
                   handle.error().to_string().c_str());
      continue;
    }
    filler_handles.push_back(*handle);
  }

  auto drained = (*env)->drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 drained.error().to_string().c_str());
    return m;
  }

  bool all_success = true;
  for (std::size_t b = 0; b < owners.size(); ++b) {
    auto report = (*env)->report(owner_handles[b]);
    if (!report || !report->success) {
      all_success = false;
      continue;
    }
    OwnerOutcome& o = owners[b];
    o.success = true;
    o.released = report->released;
    o.completed = report->completed;
    o.first_start = report->completed;
    for (const runtime::TaskOutcome& out : report->outcomes) {
      o.first_start = std::min(o.first_start, out.started);
    }
    ++m.owners_completed;
    m.release_delay_max = std::max(m.release_delay_max,
                                   std::fabs(o.released - o.window_start));
    m.start_delay_max =
        std::max(m.start_delay_max, o.first_start - o.window_start);
    m.reservation_wait += report->breakdown().reservation;
    m.owner_starts.push_back(o.first_start);
  }

  // Filler latency plus the window-exclusivity audit.
  std::vector<double> latencies;
  bool exclusive = true;
  for (AppHandle h : filler_handles) {
    auto report = (*env)->report(h);
    if (!report || !report->success) {
      all_success = false;
      continue;
    }
    ++m.fillers_completed;
    latencies.push_back(report->completed - report->enqueued);
    for (const runtime::TaskOutcome& out : report->outcomes) {
      for (const OwnerOutcome& o : owners) {
        if (!o.success) continue;
        const bool booked_host =
            std::find(o.hosts.begin(), o.hosts.end(), out.host.value()) !=
            o.hosts.end();
        // The window is live from its start until the owner finalizes
        // (spent windows are cancelled early, freeing the machines).
        const double live_end = std::min(o.window_end, o.completed);
        if (booked_host && out.started < live_end &&
            out.finished > o.window_start) {
          exclusive = false;
          std::fprintf(stderr,
                       "WINDOW VIOLATION: filler task on host %u ran "
                       "[%s, %s] inside window [%s, %s)\n",
                       out.host.value(), json_num(out.started).c_str(),
                       json_num(out.finished).c_str(),
                       json_num(o.window_start).c_str(),
                       json_num(live_end).c_str());
        }
      }
    }
  }
  m.all_success = all_success && m.owners_completed == owners.size();
  m.window_exclusive = exclusive;

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    m.filler_p50 = latencies[latencies.size() / 2];
    m.filler_max = latencies.back();
  }
  if (want_trace) m.trace_jsonl = (*env)->trace().to_jsonl();
  m.wall_ms = now_ms() - t0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E15",
                     "advance reservations: walk-in latency vs. booking "
                     "density, backfill off/on");
  bench::print_note(
      "Each configuration commits future windows, parks one owner per window,\n"
      "and floods walk-in fillers.  Conservative backfill may only start a\n"
      "filler whose guarded completion estimate lands before every pending\n"
      "window -- owners must be released exactly at their window start.");

  const std::vector<std::size_t> densities =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};

  bench::Table table({"bookings", "backfill", "owners", "fillers", "p50_s",
                      "max_s", "release_err_s", "start_delay_s", "wait_s",
                      "wall_ms", "audit"});
  std::string json = "{\"bench\":\"reservations\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"configs\":[";

  bool all_success = true;
  bool window_exclusive = true;
  bool release_exact = true;
  bool no_delay = true;
  bool first = true;
  for (std::size_t bookings : densities) {
    std::vector<double> starts_without;
    for (const bool backfill : {false, true}) {
      Measurement m = measure(bookings, backfill, smoke, /*want_trace=*/false);
      all_success = all_success && m.all_success;
      window_exclusive = window_exclusive && m.window_exclusive;
      release_exact = release_exact && m.release_delay_max == 0.0;
      // The no-delay invariant: switching backfill ON must leave every
      // owner's first task start exactly where it was with backfill OFF.
      if (!backfill) {
        starts_without = m.owner_starts;
      } else if (m.owner_starts != starts_without) {
        no_delay = false;
        std::fprintf(stderr,
                     "NO-DELAY VIOLATION: backfill moved an owner start "
                     "(bookings=%zu)\n",
                     bookings);
      }
      table.add_row(
          {std::to_string(m.bookings), backfill ? "on" : "off",
           std::to_string(m.owners_completed),
           std::to_string(m.fillers_completed) + "/" +
               std::to_string(m.fillers_submitted),
           bench::Table::num(m.filler_p50), bench::Table::num(m.filler_max),
           bench::Table::num(m.release_delay_max),
           bench::Table::num(m.start_delay_max),
           bench::Table::num(m.reservation_wait),
           bench::Table::num(m.wall_ms, 1),
           m.window_exclusive ? "exclusive" : "VIOLATED"});
      if (!first) json += ",";
      first = false;
      json += "{\"bookings\":" + std::to_string(m.bookings) +
              ",\"backfill\":" + (backfill ? std::string("true") : "false") +
              ",\"owners_completed\":" + std::to_string(m.owners_completed) +
              ",\"fillers_completed\":" + std::to_string(m.fillers_completed) +
              ",\"fillers_submitted\":" + std::to_string(m.fillers_submitted) +
              ",\"filler_p50_s\":" + json_num(m.filler_p50) +
              ",\"filler_max_s\":" + json_num(m.filler_max) +
              ",\"release_err_s\":" + json_num(m.release_delay_max) +
              ",\"start_delay_s\":" + json_num(m.start_delay_max) +
              ",\"reservation_wait_s\":" + json_num(m.reservation_wait) +
              ",\"wall_ms\":" + json_num(m.wall_ms) +
              ",\"all_success\":" + (m.all_success ? "true" : "false") +
              ",\"window_exclusive\":" +
              (m.window_exclusive ? "true" : "false") + "}";
    }
  }

  // Determinism gate: the densest backfill-on configuration, replayed with
  // tracing, must produce byte-identical traces.
  const Measurement rep1 =
      measure(densities.back(), /*backfill=*/true, smoke, /*want_trace=*/true);
  const Measurement rep2 =
      measure(densities.back(), /*backfill=*/true, smoke, /*want_trace=*/true);
  const bool deterministic =
      !rep1.trace_jsonl.empty() && rep1.trace_jsonl == rep2.trace_jsonl;

  json += "],\"all_success\":";
  json += all_success ? "true" : "false";
  json += ",\"window_exclusive\":";
  json += window_exclusive ? "true" : "false";
  json += ",\"release_exact\":";
  json += release_exact ? "true" : "false";
  json += ",\"no_delay\":";
  json += no_delay ? "true" : "false";
  json += ",\"deterministic\":";
  json += deterministic ? "true" : "false";
  json += "}";

  table.print();
  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_RESERVATIONS.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (!all_success) {
      std::fprintf(stderr, "CHECK FAILED: an application failed or was "
                           "rejected\n");
      return 1;
    }
    if (!window_exclusive) {
      std::fprintf(stderr, "CHECK FAILED: a walk-in task violated a "
                           "committed window\n");
      return 1;
    }
    if (!release_exact) {
      std::fprintf(stderr, "CHECK FAILED: an owner was not released exactly "
                           "at its window start\n");
      return 1;
    }
    if (!no_delay) {
      std::fprintf(stderr, "CHECK FAILED: conservative backfill delayed a "
                           "committed window's start\n");
      return 1;
    }
    if (!deterministic) {
      std::fprintf(stderr, "CHECK FAILED: reservation runs are not "
                           "replay-deterministic\n");
      return 1;
    }
    std::printf(
        "check: ok (windows exclusive, releases exact, backfill no-delay, "
        "replay deterministic)\n");
  }
  return 0;
}
