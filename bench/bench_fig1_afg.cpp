// Figure 1 reproduction: the Linear Equation Solver application flow graph
// and its task-properties panels, plus the end-to-end run that the paper's
// prototype demonstrated on campus resources.
//
// The artifact being reproduced is the *content* of Figure 1 — the AFG
// (LU-Decomposition and Matrix-Multiplication feeding the solve pipeline)
// and the two task-properties windows — so this bench prints the panels and
// then demonstrates the application executing with real kernels and a
// verified answer.
#include <cstdio>

#include "bench_util.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("Fig. 1", "Linear Equation Solver AFG + task properties");

  VdceEnvironment env(make_campus_pair());
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  common::Rng rng(1997);
  const std::size_t n = 48;
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  tasklib::Matrix scale = tasklib::Matrix::identity(n);
  tasklib::Vector b(n);
  for (double& v : b) v = rng.uniform(-3, 3);
  env.store().put("/users/VDCE/user_k/matrix_A.dat", tasklib::Value(a),
                  124880);
  env.store().put("/users/VDCE/user_k/matrix_S.dat", tasklib::Value(scale),
                  124880);
  env.store().put("/users/VDCE/user_k/vector_b.dat", tasklib::Value(b),
                  static_cast<double>(n * sizeof(double)));

  // The Figure-1 graph, including the Matrix_Multiplication task from the
  // second properties panel (preconditioning A' = S * A).
  editor::AppBuilder app("Linear Equation Solver");
  auto mm = app.task("Matrix_Multiplication", "matrix.multiply")
                .sequential()
                .prefer_machine_type("SUN solaris")
                .input_file("/users/VDCE/user_k/matrix_S.dat", 124880)
                .input_file("/users/VDCE/user_k/matrix_A.dat", 124880)
                .output_data(124880);
  auto lu = app.task("LU_Decomposition", "matrix.lu_decomposition")
                .parallel(2)
                .output_data(124880);
  auto fwd = app.task("Forward_Substitution", "matrix.forward_substitution")
                 .output_data(124880);
  auto bwd = app.task("Backward_Substitution", "matrix.backward_substitution")
                 .output_file("/users/VDCE/user_k/vector_X.dat",
                              static_cast<double>(n * sizeof(double)));
  app.link(mm, lu).value();
  app.link(lu, fwd).value();
  fwd.input_file("/users/VDCE/user_k/vector_b.dat",
                 static_cast<double>(n * sizeof(double)));
  app.link(fwd, bwd).value();
  afg::Afg graph = app.build().value();

  std::puts(editor::render_afg_summary(graph).c_str());
  std::puts("TASK PROPERTIES WINDOWS (cf. paper Figure 1):\n");
  for (const afg::TaskNode& t : graph.tasks()) {
    std::puts(editor::render_properties_panel(graph, t.id).c_str());
  }

  auto table = env.schedule(graph, session);
  if (!table) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 table.error().to_string().c_str());
    return 1;
  }
  std::puts(table->describe(graph).c_str());
  auto report = env.execute_with_table(graph, *table, session, {});
  if (!report || !report->success) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::puts(report->describe(graph).c_str());

  auto x = std::any_cast<tasklib::Vector>(report->exit_outputs.at(
      graph.find_task("Backward_Substitution")->value()));
  // S is the identity, so the pipeline solved A x = b.
  double residual = tasklib::residual_inf(a, x, b);
  std::printf("verification: ||A x - b||_inf = %.3e (%s)\n", residual,
              residual < 1e-8 ? "OK" : "FAILED");
  return residual < 1e-8 ? 0 : 1;
}
