// Figure 3 reproduction: the Host Selection Algorithm.
//
// Reports (a) selection quality — predicted time of the machine Fig. 3
// picks vs. the site mean and vs. random pick, as host-pool size and
// heterogeneity grow; and (b) the algorithm's own cost, since it runs
// Predict(task, R) for every machine of the site on every scheduling
// request.
#include <chrono>
#include <memory>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "db/site_repository.hpp"
#include "sched/host_selection.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("Fig. 3", "Host Selection Algorithm — quality and cost");
  bench::print_note(
      "best = predicted exec time of the selected machine; site-mean = mean\n"
      "prediction over all feasible machines (what a random/naive pick pays\n"
      "in expectation); wall = host-selection wall time for a 100-task AFG.");

  bench::Table table({"hosts/site", "best (s)", "site-mean (s)",
                      "advantage", "wall (us/task)"});

  for (std::size_t hosts : {2u, 4u, 8u, 16u, 32u, 64u}) {
    TestbedSpec spec;
    spec.sites = 1;
    spec.hosts_per_site = hosts;
    spec.seed = 13;
    net::Topology topology = make_testbed(spec);
    tasklib::TaskRegistry registry;
    tasklib::register_standard_libraries(registry);
    db::SiteRepository repo(common::SiteId(0));
    repo.register_site_hosts(topology);
    registry.seed_database(repo.tasks());
    predict::Predictor predictor;

    // Mimic live operation: the machines carry measured background loads.
    common::Rng rng(5);
    for (common::HostId h : topology.site(common::SiteId(0)).hosts) {
      (void)repo.resources().record_workload(
          h, db::WorkloadSample{0.0, rng.uniform(0.0, 1.5), 128.0});
    }

    afg::Afg graph = afg::make_independent(100, 1000);

    auto start = std::chrono::steady_clock::now();
    auto output = sched::HostSelectionAlgorithm::run(graph, common::SiteId(0),
                                                     repo, predictor);
    auto elapsed = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!output) return 1;

    // Quality: compare the selected machine's prediction against the mean
    // over all machines for one representative task.
    const afg::TaskNode& node = graph.task(common::TaskId(0));
    auto perf = sched::resolve_perf(node, repo.tasks());
    auto ranked = sched::HostSelectionAlgorithm::feasible_hosts(
        node, *perf, common::SiteId(0), repo, predictor);
    double mean = 0.0;
    for (const auto& rh : ranked) mean += rh.predicted;
    mean /= static_cast<double>(ranked.size());
    double best = output->bids.at(common::TaskId(0)).predicted;

    table.add_row({std::to_string(hosts), bench::Table::num(best, 3),
                   bench::Table::num(mean, 3),
                   bench::Table::num(mean / best, 2) + "x",
                   bench::Table::num(elapsed / 100.0, 1)});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: the advantage of prediction-driven selection grows\n"
      "with pool size/heterogeneity; per-task cost grows linearly in hosts.");
  return 0;
}
