// E5 — §4.1: echo-based failure detection.
//
// Sweeps the echo period and the fleet size: for each configuration a
// random non-leader host is killed at a random phase and we measure the
// latency until the site's resource-performance database marks it down,
// plus the standing echo traffic and any false positives under heavy load
// (loaded hosts still answer echoes — the protocol keys on reachability,
// not speed).
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("E5", "echo failure detection: latency and overhead");
  bench::print_note(
      "detect latency = kill time -> resource db marks host down; mean over\n"
      "10 kills at random phases.  echo msgs/s counted fleet-wide.");

  bench::Table table({"echo period (s)", "hosts", "mean detect (s)",
                      "p95 detect (s)", "echo msgs/s", "false positives"});

  for (double period : {0.5, 1.0, 2.0, 4.0}) {
    for (std::size_t hosts : {8u, 32u}) {
      common::Stats latency;
      std::uint64_t echo_messages = 0;
      double observed_seconds = 0.0;
      int false_positives = 0;

      for (int trial = 0; trial < 10; ++trial) {
        EnvironmentOptions options;
        options.runtime.echo_period = period;
        options.background_load = true;
        options.load.mean_load = 1.0;  // heavy load: echoes must still pass
        TestbedSpec spec;
        spec.sites = 1;
        spec.hosts_per_site = hosts;
        spec.seed = 50 + static_cast<std::uint64_t>(trial);
        VdceEnvironment env(make_testbed(spec), options);
        env.bring_up();
        env.run_for(3.0 * period);

        // False positives: nothing should be down yet.
        for (const net::Host& h : env.topology().hosts()) {
          auto rec = env.repo(h.site).resources().find(h.id);
          if (rec && !rec->up) ++false_positives;
        }

        // Kill a random non-leader host at a random phase.
        common::Rng rng(900 + static_cast<std::uint64_t>(trial));
        const net::Site& site = env.topology().site(common::SiteId(0));
        common::HostId victim;
        do {
          victim = site.hosts[rng.pick_index(site.hosts.size())];
        } while (env.topology().group(env.topology().host(victim).group)
                     .leader == victim);
        env.run_for(rng.uniform(0.0, period));
        env.fabric().reset_stats();
        double killed = env.now();
        env.topology().set_host_up(victim, false);
        double detected = -1.0;
        for (int step = 0; step < 400 && detected < 0; ++step) {
          env.run_for(period / 20.0);
          auto rec = env.repo(common::SiteId(0)).resources().find(victim);
          if (rec && !rec->up) detected = env.now();
        }
        if (detected >= 0) latency.add(detected - killed);
        auto it = env.fabric().stats().sent_by_type.find("gm.echo");
        if (it != env.fabric().stats().sent_by_type.end()) {
          echo_messages += it->second;
        }
        observed_seconds += env.now() - killed;
      }

      table.add_row({bench::Table::num(period, 1), std::to_string(hosts),
                     bench::Table::num(latency.mean(), 2),
                     bench::Table::num(latency.percentile(95), 2),
                     bench::Table::num(
                         static_cast<double>(echo_messages) / observed_seconds,
                         1),
                     std::to_string(false_positives)});
    }
  }
  table.print();

  bench::print_note(
      "\nExpected shape: detection latency ~ 1.5x echo period (uniform kill\n"
      "phase + round close), independent of fleet size; echo traffic scales\n"
      "linearly with hosts and inversely with the period; zero false\n"
      "positives even at mean load 1.0.");
  return 0;
}
