// Shared harness utilities for the experiment benches.
//
// Each bench binary reproduces one figure/table/claim from DESIGN.md's
// per-experiment index: it builds the workload, sweeps the parameter the
// experiment varies, and prints an aligned table of the same series the
// paper's evaluation would report.  EXPERIMENTS.md records the measured
// output next to the paper's qualitative claim.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace vdce::bench {

/// Round-trippable JSON number: the shortest decimal form that parses back
/// to the identical double (std::to_chars with no precision argument).
/// Fixed-precision emitters round differently across libc implementations,
/// which made BENCH_*.json diffs noisy between toolchains; the shortest
/// round-trip form is unique, so equal doubles always serialize to equal
/// bytes.  Non-finite values (JSON has no syntax for them) emit 0.
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

inline void print_title(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3) {
    return common::format_double(v, precision);
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%s%-*s", c == 0 ? "  " : "  ",
                    static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdce::bench
