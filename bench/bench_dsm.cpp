// E9 — the §5 future-work DSM: shared-memory programming costs on VDCE.
//
// Three classic sharing patterns over the two-site testbed, measuring
// simulated operation latency and protocol traffic:
//
//  * read-mostly  — one writer updates, many readers poll (cache hits
//    after the first fetch; invalidations on each update);
//  * ping-pong    — two hosts alternate writes to one object (worst case:
//    every access migrates ownership);
//  * lock+counter — the canonical mutual-exclusion increment loop.
//
// A message-passing baseline performs the equivalent data movement with
// raw fabric sends, quantifying what the shared-memory abstraction costs
// over hand-written messaging (the trade-off the paper's future-work
// paragraph is implicitly weighing).
#include <algorithm>
#include <any>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct PatternResult {
  double total_time = 0.0;
  std::uint64_t messages = 0;
  double bytes = 0.0;
  std::uint64_t invalidations = 0;
  std::uint64_t recalls = 0;
};

/// Protocol traffic only (monitoring noise excluded): message count for
/// types with a "dsm." or "raw." prefix.
std::uint64_t protocol_messages(const net::FabricStats& stats) {
  std::uint64_t total = 0;
  for (const auto& [type, count] : stats.sent_by_type) {
    if (type.rfind("dsm.", 0) == 0 || type.rfind("raw.", 0) == 0) {
      total += count;
    }
  }
  return total;
}

PatternResult run_read_mostly(VdceEnvironment& env, dsm::DsmRuntime& dsm,
                              int rounds, int readers) {
  dsm.define_object("rm", tasklib::Value(0), 4096);
  env.fabric().reset_stats();
  dsm.reset_stats();
  double start = env.now();

  auto writer = dsm.client(env.topology().site(common::SiteId(0)).hosts[1]);
  std::vector<dsm::DsmClient> clients;
  for (int r = 0; r < readers; ++r) {
    clients.push_back(dsm.client(
        env.topology()
            .site(common::SiteId(r % 2))
            .hosts[static_cast<std::size_t>(2 + r / 2)]));
  }

  // Each round: write once, then every reader reads 4 times.
  struct Round {
    VdceEnvironment& env;
    dsm::DsmRuntime& dsm;
    dsm::DsmClient& writer;
    std::vector<dsm::DsmClient>& clients;
    int remaining;
    double finished = -1.0;
    void go() {
      if (remaining-- == 0) {
        finished = env.now();
        return;
      }
      writer.write("rm", tasklib::Value(remaining), [this] {
        // Readers poll sequentially (continuation chain per reader set).
        read_all(0, 0);
      });
    }
    void read_all(std::size_t reader, int repeat) {
      if (reader == clients.size()) {
        go();
        return;
      }
      clients[reader].read("rm", [this, reader, repeat](tasklib::Value) {
        if (repeat + 1 < 4) {
          read_all(reader, repeat + 1);
        } else {
          read_all(reader + 1, 0);
        }
      });
    }
  };
  Round round{env, dsm, writer, clients, rounds};
  round.go();
  env.run_for(300.0);

  const auto& fs = env.fabric().stats();
  return PatternResult{round.finished - start, protocol_messages(fs),
                       fs.bytes_sent, dsm.stats().invalidations_sent,
                       dsm.stats().owner_recalls};
}

PatternResult run_ping_pong(VdceEnvironment& env, dsm::DsmRuntime& dsm,
                            int rounds) {
  dsm.define_object("pp", tasklib::Value(0), 4096);
  env.fabric().reset_stats();
  dsm.reset_stats();
  double start = env.now();

  auto a = dsm.client(env.topology().site(common::SiteId(0)).hosts[1]);
  auto b = dsm.client(env.topology().site(common::SiteId(1)).hosts[1]);

  struct PingPong {
    VdceEnvironment& env;
    dsm::DsmClient& a;
    dsm::DsmClient& b;
    int remaining;
    double finished = -1.0;
    void go(bool a_turn) {
      if (remaining-- == 0) {
        finished = env.now();
        return;
      }
      auto& me = a_turn ? a : b;
      me.write("pp", tasklib::Value(remaining),
               [this, a_turn] { go(!a_turn); });
    }
  };
  PingPong game{env, a, b, rounds};
  game.go(true);
  env.run_for(300.0);

  const auto& fs = env.fabric().stats();
  return PatternResult{game.finished - start, protocol_messages(fs),
                       fs.bytes_sent, dsm.stats().invalidations_sent,
                       dsm.stats().owner_recalls};
}

/// Baseline: the ping-pong data movement written as raw messages (each turn
/// one 4 KB send to the peer).
PatternResult run_ping_pong_messages(VdceEnvironment& env, int rounds) {
  env.fabric().reset_stats();
  double start = env.now();
  common::HostId a = env.topology().site(common::SiteId(0)).hosts[1];
  common::HostId b = env.topology().site(common::SiteId(1)).hosts[1];

  // Self-perpetuating relay using the raw fabric.
  auto state = std::make_shared<int>(rounds);
  auto finished = std::make_shared<double>(-1.0);
  std::function<void(common::HostId, common::HostId)> turn =
      [&env, state, finished, &turn](common::HostId from, common::HostId to) {
        if ((*state)-- == 0) {
          *finished = env.now();
          return;
        }
        (void)env.fabric().send(net::Message{from, to, "raw.pingpong", 4096,
                                             std::any()});
        // The reply leg fires when the message would have been processed;
        // emulate with an engine callback after the transfer time.
        env.engine().schedule(
            env.topology().transfer_time(from, to, 4096),
            [&turn, to, from] { turn(to, from); });
      };
  turn(a, b);
  env.run_for(300.0);
  const auto& fs = env.fabric().stats();
  return PatternResult{*finished - start, protocol_messages(fs),
                       fs.bytes_sent, 0, 0};
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("E9", "DSM (paper §5 future work): sharing patterns");
  bench::print_note(
      "Two-site testbed; object size 4KB; 50 rounds per pattern.  The\n"
      "message-passing row moves the same data with raw sends.");

  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  VdceEnvironment env(make_campus_pair(5), options);
  env.bring_up();
  dsm::DsmRuntime& dsm = env.enable_dsm();

  bench::Table table({"pattern", "time (s)", "msgs", "bytes", "invalidations",
                      "owner recalls"});
  auto add = [&table](const char* name, const PatternResult& r) {
    table.add_row({name, bench::Table::num(r.total_time, 3),
                   std::to_string(r.messages), common::format_bytes(r.bytes),
                   std::to_string(r.invalidations),
                   std::to_string(r.recalls)});
  };

  add("read-mostly (8 readers x4)", run_read_mostly(env, dsm, 50, 8));
  add("write ping-pong (WAN)", run_ping_pong(env, dsm, 50));
  add("ping-pong, raw messages", run_ping_pong_messages(env, 50));

  // Lock-protected counter throughput.
  {
    dsm.define_object("ctr", tasklib::Value(0), 64);
    env.fabric().reset_stats();
    dsm.reset_stats();
    double start = env.now();
    constexpr int kHosts = 6;
    constexpr int kIncrements = 10;
    struct Worker {
      VdceEnvironment& env;
      dsm::DsmClient client;
      int remaining;
      double* finished;
      void step() {
        if (remaining-- == 0) {
          *finished = std::max(*finished, env.now());
          return;
        }
        client.acquire("ctr_lock", [this] {
          client.read("ctr", [this](tasklib::Value v) {
            client.write("ctr", tasklib::Value(std::any_cast<int>(v) + 1),
                         [this] {
                           client.release("ctr_lock", [this] { step(); });
                         });
          });
        });
      }
    };
    double finished = -1.0;
    std::vector<Worker> workers;
    workers.reserve(kHosts);
    for (int i = 0; i < kHosts; ++i) {
      workers.push_back(
          Worker{env,
                 dsm.client(env.topology()
                                .site(common::SiteId(i % 2))
                                .hosts[static_cast<std::size_t>(1 + i / 2)]),
                 kIncrements, &finished});
    }
    for (Worker& w : workers) w.step();
    env.run_for(600.0);
    const auto& fs = env.fabric().stats();
    int final_value = std::any_cast<int>(dsm.home_value("ctr").value());
    add("lock+counter (6 hosts x10)",
        PatternResult{finished - start, protocol_messages(fs), fs.bytes_sent,
                      dsm.stats().invalidations_sent,
                      dsm.stats().owner_recalls});
    std::printf("  counter check: %d (expected %d) -> %s\n", final_value,
                kHosts * kIncrements,
                final_value == kHosts * kIncrements ? "OK" : "FAILED");
    if (final_value != kHosts * kIncrements) return 1;
  }
  table.print();

  bench::print_note(
      "\nExpected shape: read-mostly amortizes to local cache hits between\n"
      "updates; write ping-pong pays an ownership migration (3-hop recall)\n"
      "per access vs 1 hop for raw messages — the classic DSM tax; the\n"
      "lock+counter total must equal hosts x increments.");
  return 0;
}
