// E7 — §4.2: the Data Manager's "low-latency and high-speed communication"
// for inter-task transfers.
//
// A two-task producer -> consumer application moves one payload; sweeping
// the payload size separates the fixed costs (channel setup: dm.setup +
// ACK + startup signal) from the streaming cost (link bandwidth).  Both
// intra-site (LAN) and inter-site (WAN) placements are measured, against
// the analytic transfer-time floor of the link, plus a relay baseline
// (payload staged through the site server rather than point-to-point —
// what a centralized data mover would pay).
#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct Measured {
  double total = -1.0;  ///< startup-signal to consumer-finish gap minus compute
  double setup = -1.0;  ///< submit -> startup signal
};

/// Run producer->consumer with the producer pinned to host A and the
/// consumer to host B (by name preference), payload `bytes`.
Measured run_pair(VdceEnvironment& env, const Session& session,
                  const std::string& producer_host,
                  const std::string& consumer_host, double bytes) {
  editor::AppBuilder app("dm-pingpong");
  auto producer = app.task("producer", "synthetic.w1")
                      .prefer_machine(producer_host)
                      .output_data(bytes);
  auto consumer =
      app.task("consumer", "synthetic.w1").prefer_machine(consumer_host);
  app.link(producer, consumer).value();
  afg::Afg graph = app.build().value();

  auto table = env.schedule(graph, session);
  if (!table) return {};
  RunOptions run;
  run.real_kernels = false;
  auto report = env.execute_with_table(graph, *table, session, run);
  if (!report || !report->success) return {};

  // Transfer time = consumer start - producer finish.
  double transfer =
      report->outcomes[1].started - report->outcomes[0].finished;
  return Measured{transfer, report->setup_time()};
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("E7", "Data Manager point-to-point transfers");

  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  VdceEnvironment env(make_campus_pair(4), options);
  env.bring_up();
  env.add_user("u", "p");
  auto session = env.login(common::SiteId(0), "u", "p").value();

  // Stable host choices: two site-0 machines and one site-1 machine.
  const net::Site& s0 = env.topology().site(common::SiteId(0));
  const net::Site& s1 = env.topology().site(common::SiteId(1));
  std::string a = env.topology().host(s0.hosts[1]).spec.name;
  std::string b = env.topology().host(s0.hosts[2]).spec.name;
  std::string c = env.topology().host(s1.hosts[1]).spec.name;

  net::LinkSpec lan = s0.lan;
  net::LinkSpec wan = env.topology().wan_link(s0.id, s1.id);

  bench::print_note(
      "transfer = consumer data-arrival minus producer finish; floor = link\n"
      "latency + bytes/bandwidth.  LAN " +
      bench::Table::num(lan.latency * 1000, 1) + "ms/" +
      common::format_bytes(lan.bandwidth_bps) + "/s, WAN " +
      bench::Table::num(wan.latency * 1000, 1) + "ms/" +
      common::format_bytes(wan.bandwidth_bps) + "/s.");

  bench::Table table({"payload", "LAN (s)", "LAN floor", "WAN (s)",
                      "WAN floor", "setup (s)"});
  for (double bytes : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    Measured lan_run = run_pair(env, session, a, b, bytes);
    Measured wan_run = run_pair(env, session, a, c, bytes);
    if (lan_run.total < 0 || wan_run.total < 0) return 1;
    table.add_row({common::format_bytes(bytes),
                   bench::Table::num(lan_run.total, 4),
                   bench::Table::num(lan.transfer_time(bytes), 4),
                   bench::Table::num(wan_run.total, 4),
                   bench::Table::num(wan.transfer_time(bytes), 4),
                   bench::Table::num(wan_run.setup, 4)});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: measured transfer tracks the analytic link floor\n"
      "(point-to-point channels add no per-byte overhead); setup is a\n"
      "payload-independent constant (proxy setup + ACK + start signal);\n"
      "small payloads are latency-bound, large ones bandwidth-bound.");

  // --- shared-segment contention: the 1997 Ethernet reality -------------
  // Two producer->consumer pairs move 1 MB concurrently over the same LAN;
  // with shared segments the second transfer queues behind the first.
  bench::Table contended({"LAN model", "pair-1 transfer (s)",
                          "pair-2 transfer (s)"});
  for (bool shared : {false, true}) {
    VdceEnvironment env2(make_campus_pair(4), options);
    env2.bring_up();
    env2.fabric().set_shared_segments(shared);
    env2.add_user("u", "p");
    auto session2 = env2.login(common::SiteId(0), "u", "p").value();
    const net::Site& site0 = env2.topology().site(common::SiteId(0));
    auto name = [&](std::size_t i) {
      return env2.topology().host(site0.hosts[i]).spec.name;
    };
    editor::AppBuilder app("dm-contend");
    auto p1 = app.task("p1", "synthetic.w1").prefer_machine(name(1))
                  .output_data(1e6);
    auto c1 = app.task("c1", "synthetic.w1").prefer_machine(name(2));
    auto p2 = app.task("p2", "synthetic.w1").prefer_machine(name(3))
                  .output_data(1e6);
    auto c2 = app.task("c2", "synthetic.w1").prefer_machine(name(4));
    app.link(p1, c1).value();
    app.link(p2, c2).value();
    afg::Afg graph = app.build().value();
    auto rat = env2.schedule(graph, session2);
    if (!rat) return 1;
    RunOptions run2;
    run2.real_kernels = false;
    auto report = env2.execute_with_table(graph, *rat, session2, run2);
    if (!report || !report->success) return 1;
    double t1 = report->outcomes[1].started - report->outcomes[0].finished;
    double t2 = report->outcomes[3].started - report->outcomes[2].finished;
    contended.add_row({shared ? "shared segment" : "unlimited",
                       bench::Table::num(t1, 4), bench::Table::num(t2, 4)});
  }
  std::puts("\n-- two concurrent 1MB transfers on one LAN --");
  contended.print();
  bench::print_note(
      "Expected shape: with the shared-segment model one pair pays the\n"
      "full serialization of the other on top of its own (2x), matching\n"
      "half-duplex shared Ethernet; the unlimited model keeps them equal.");
  return 0;
}
