// E6 — §4.1: the Application Controller's load-threshold rescheduling.
//
// A fixed workload runs while external load spikes slam the machines it was
// placed on.  With rescheduling disabled (threshold = infinity) the tasks
// crawl on the overloaded machines; with the paper's policy the controller
// terminates them and the coordinator re-places them.  Sweeps spike
// magnitude and reports completion time and reschedule counts.
#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct Outcome {
  double makespan = -1.0;
  int reschedules = 0;
};

Outcome run_once(double spike_load, bool rescheduling_enabled) {
  EnvironmentOptions options;
  options.runtime.overload_threshold = rescheduling_enabled ? 2.0 : 1e9;
  options.runtime.controller_period = 0.5;
  options.runtime.exec_noise_cv = 0.0;
  VdceEnvironment env(make_campus_pair(9), options);
  env.bring_up();
  env.add_user("u", "p");
  auto session = env.login(common::SiteId(0), "u", "p").value();

  afg::Afg graph = afg::make_independent(4, 8000);
  auto table = env.schedule(graph, session);
  if (!table) return {};

  // Spike every chosen machine shortly after execution begins; spikes last
  // long enough that waiting them out is the losing strategy.
  env.engine().schedule(5.0, [&] {
    for (common::HostId h : table->hosts_used()) {
      env.topology().add_cpu_load(h, spike_load);
      env.engine().schedule(400.0, [&env, h, spike_load] {
        env.topology().add_cpu_load(h, -spike_load);
      });
    }
  });

  RunOptions run;
  run.real_kernels = false;
  auto report = env.execute_with_table(graph, *table, session, run);
  if (!report || !report->success) return {};
  return Outcome{report->makespan(), report->reschedules};
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("E6", "overload rescheduling: completion time");
  bench::print_note(
      "4 independent 8000-MFLOP tasks; external spikes hit every assigned\n"
      "machine at t=+5s and last 400s.  threshold=2.0 vs disabled.");

  bench::Table table({"spike load", "no-resched (s)", "with-resched (s)",
                      "speedup", "reschedules"});

  for (double spike : {0.0, 2.0, 4.0, 8.0}) {
    Outcome off = run_once(spike, false);
    Outcome on = run_once(spike, true);
    if (off.makespan < 0 || on.makespan < 0) return 1;
    table.add_row({bench::Table::num(spike, 1),
                   bench::Table::num(off.makespan, 1),
                   bench::Table::num(on.makespan, 1),
                   bench::Table::num(off.makespan / on.makespan, 2) + "x",
                   std::to_string(on.reschedules)});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: identical at spike 0 (no reschedules fire); the\n"
      "advantage of terminate-and-reschedule grows with spike magnitude,\n"
      "approaching (1+spike)/(1+move cost) for long spikes.");
  return 0;
}
