// E-simkernel — event-kernel throughput: the zero-allocation arena +
// calendar-queue engine vs. the frozen pre-redesign kernel.
//
// The workload is the 32x32-grid event mix: every host of a 1024-host grid
// runs the daemon timers the VDCE runtime arms at bring-up (monitor 1 s,
// echo 0.5 s, transfer/progress 2 s, phase-staggered per host); every
// monitor tick emits two one-shot "message" events, one cancelled every
// other tick; every echo tick performs the fabric's RPC shape — request
// delivery, reply delivery, and a 5 s timeout event cancelled when the
// reply arrives; and every transfer tick schedules a batch of staging
// completions 0.5-8 s out (the data manager's file-transfer shape).  The
// long-lived timeouts and in-flight transfers hold the pending set at
// grid-scale depth (tens of thousands), which is exactly where the old
// kernel's 64-byte heap entries go cache-hostile.
// Message closures carry a 56-byte payload, matching the in-tree callers
// (fabric deliveries and daemon callbacks capture 24-120-byte closures —
// the reason sim::Task has a 128-byte inline budget, and well past
// std::function's 16-byte SSO, so the legacy kernel pays its real per-event
// allocations).  That reproduces the kernel-visible shape of a grid-scale
// run — thousands of pending events, grid-aligned timestamp ties, a steady
// cancel stream — without the daemons' own work, so the measured
// difference is pure kernel cost.
//
// Three engines replay the identical mix:
//
//   legacy    — sim::legacy::LegacyEngine, the pre-redesign kernel frozen
//               verbatim (std::function callbacks, shared_ptr<bool> handle
//               control blocks, one binary heap): the baseline.
//   heap-ref  — the new engine in QueueKind::kBinaryHeapReference mode:
//               arena + inline Task, old pending-set (isolates how much of
//               the win is allocation vs. queue discipline).
//   calendar  — the production zero-allocation kernel.
//
// A firing-order checksum (FNV over every fired event's id and timestamp)
// must match across all three — the speedup only counts if the replay is
// event-for-event identical.  Emits JSON to stdout and BENCH_SIM.json for
// CI artifact upload.
//
// Measurement methodology (docs/SCALING.md "Event-kernel throughput"):
// each replay runs a warmup window first (bring-up transient: timers
// arming, the arena and calendar growing to steady state), then times the
// steady-state window and counts heap allocations inside it via a global
// operator-new hook.  The redesign's structural claim — the steady-state
// schedule/fire/cancel loop allocates NOTHING — is therefore checked here
// on the full grid mix, not just in the unit test.  The wall-clock speedup
// threshold is the honest measured floor against the frozen baseline (the
// original ≥5x target assumed an allocation-bound baseline; glibc's
// thread-cache fast path keeps the old kernel's two mallocs per event
// cheap, so the measured steady gain is ~1.6-2x wall-clock plus the
// complete elimination of allocator traffic — see docs/SCALING.md for the
// numbers and the revision rationale).
//
// Flags:
//   --smoke   8x8 grid, short horizon (CI per-commit signal)
//   --check   exit non-zero unless (a) the firing-order checksums match,
//             (b) the calendar kernel's steady-state window performed no
//             heap allocation (at most 1 per million events, tolerating a
//             rare calendar rebuild), and (c) the wall-clock speedup over
//             legacy meets the documented floor (1.4x full, 1.25x smoke)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"

// ---- global allocation counter ---------------------------------------------
// Counts every heap allocation in the bench binary so the steady-state
// windows can report allocations per event for each kernel (and --check can
// enforce that the redesigned kernel performs none).
namespace {
std::uint64_t g_allocations = 0;  // single-threaded bench
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MixSpec {
  std::size_t sites = 32;
  std::size_t hosts_per_site = 32;
  double warmup = 40.0;    ///< simulated seconds of untimed bring-up
  double horizon = 200.0;  ///< simulated seconds (timed: warmup..horizon)
  [[nodiscard]] std::size_t hosts() const { return sites * hosts_per_site; }
};

/// Per-replay state shared by every callback.  The pseudo-random message
/// delays are drawn from this LCG, so as long as the firing order is
/// identical (checked via the checksum) every engine sees the same draws.
template <typename EngineT>
struct Mix {
  EngineT* engine = nullptr;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::uint64_t checksum = 0xcbf29ce484222325ull;  // FNV offset basis
  std::uint64_t ticks = 0;

  std::uint64_t draw() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  }
  void stamp(std::uint32_t id) {
    std::uint64_t bits;
    const double t = engine->now();
    std::memcpy(&bits, &t, sizeof bits);
    checksum = (checksum ^ (bits + id)) * 1099511628211ull;  // FNV prime
  }
};

/// Fire-and-forget dispatch: the redesigned API posts handle-free; the old
/// API had no such form, so the legacy kernel pays its historical
/// shared_ptr<bool> handle cost on every message, as every caller did.
template <typename F>
void post_ev(sim::Engine* e, double delay, F&& fn) {
  e->post(delay, std::forward<F>(fn));
}
template <typename F>
void post_ev(sim::legacy::LegacyEngine* e, double delay, F&& fn) {
  e->schedule(delay, std::forward<F>(fn));
}

/// What a fabric delivery closure carries: routing, sizing, and timing
/// metadata.  56 bytes — representative of the in-tree callers and past
/// std::function's inline buffer, so the legacy kernel heap-allocates the
/// closure the way it did for the real runtime.
struct Payload {
  std::uint64_t src = 0, dst = 0, kind = 0;
  double bytes = 0.0, deadline = 0.0, enqueued = 0.0;
  std::uint64_t tag = 0;
};
static_assert(sizeof(Payload) == 56);

/// One monitor tick: stamp, then emit two message events, cancelling the
/// second on every other tick (the cancelled entry stays queued and is
/// recycled when its time comes up — both kernels' frozen semantics).
template <typename EngineT>
void monitor_tick(Mix<EngineT>* mix, std::uint32_t host) {
  mix->stamp(host * 8 + 0);
  ++mix->ticks;
  const double d1 = 0.001 + static_cast<double>(mix->draw() % 400) * 0.001;
  const double d2 = 0.001 + static_cast<double>(mix->draw() % 400) * 0.001;
  Payload p;
  p.src = host;
  p.dst = mix->draw();
  p.bytes = 128.0;
  p.enqueued = mix->engine->now();
  post_ev(mix->engine, d1, [mix, host, p] {
    mix->stamp(host * 8 + 3 + static_cast<std::uint32_t>(p.kind & 1));
  });
  p.kind = 1;
  auto h = mix->engine->schedule(d2, [mix, host, p] {
    mix->stamp(host * 8 + 3 + static_cast<std::uint32_t>(p.kind & 1));
  });
  if (mix->ticks % 2 == 0) h.cancel();
}

/// One echo tick: the fabric's RPC shape — send a request, arm a 5 s
/// timeout (the group manager's echo deadline), deliver a reply that
/// cancels the timeout.  The cancelled timeout stays queued until its
/// instant passes (frozen semantics), so every echo keeps one dead entry
/// in the pending set for ~5 s and exercises the cancel/recycle path on
/// every kernel.
template <typename EngineT>
void echo_tick(Mix<EngineT>* mix, std::uint32_t host) {
  mix->stamp(host * 8 + 1);
  const double rtt = 0.002 + static_cast<double>(mix->draw() % 200) * 0.001;
  Payload p;
  p.src = host;
  p.dst = mix->draw();
  p.kind = 2;
  p.bytes = 64.0;
  p.deadline = mix->engine->now() + 5.0;
  p.enqueued = mix->engine->now();
  auto timeout = mix->engine->schedule(5.0, [mix, host, p] {
    mix->stamp(host * 8 + 6 + static_cast<std::uint32_t>(p.kind & 1));
  });
  post_ev(
      mix->engine, rtt, [mix, host, p, timeout]() mutable {
        mix->stamp(host * 8 + 5);
        timeout.cancel();  // reply arrived: the timeout never fires
        Payload reply = p;
        reply.kind = 3;
        reply.enqueued = mix->engine->now();
        const double back =
            0.002 + static_cast<double>(mix->draw() % 200) * 0.001;
        post_ev(mix->engine, back, [mix, host, reply] {
          mix->stamp(host * 8 + 7 + static_cast<std::uint32_t>(reply.kind & 1));
        });
      });
}

/// One transfer tick: the data manager starts a batch of stagings whose
/// completions land 0.5-8 s out.  At steady state each host keeps ~17
/// in-flight completions queued, which is what actually fills the pending
/// set at grid scale (32x32 -> ~17k entries from transfers alone).
template <typename EngineT>
void transfer_tick(Mix<EngineT>* mix, std::uint32_t host) {
  mix->stamp(host * 8 + 2);
  for (int i = 0; i < 8; ++i) {
    const double eta =
        0.5 + static_cast<double>(mix->draw() % 7500) * 0.001;
    Payload p;
    p.src = host;
    p.dst = mix->draw();
    p.kind = 4;
    p.bytes = 4096.0 + static_cast<double>(i) * 512.0;
    p.deadline = mix->engine->now() + eta;
    p.enqueued = mix->engine->now();
    post_ev(mix->engine, eta, [mix, host, p] {
      mix->stamp(host * 8 + 4 + static_cast<std::uint32_t>(p.kind & 1));
    });
  }
}

struct ReplayResult {
  double ms = 0.0;
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;
  std::uint64_t allocs = 0;  ///< heap allocations in the timed window
  double events_per_sec = 0.0;
  std::size_t arena_high_water = 0;
};

template <typename EngineT>
ReplayResult replay(EngineT& engine, const MixSpec& spec) {
  Mix<EngineT> mix;
  mix.engine = &engine;
  for (std::size_t h = 0; h < spec.hosts(); ++h) {
    const auto host = static_cast<std::uint32_t>(h);
    const double phase = static_cast<double>(h % 16) / 16.0;
    engine.every(1.0, [m = &mix, host] { monitor_tick(m, host); }, phase);
    engine.every(0.5, [m = &mix, host] { echo_tick(m, host); }, phase * 0.5);
    engine.every(2.0, [m = &mix, host] { transfer_tick(m, host); },
                 phase * 2.0);
  }
  // Untimed bring-up: timers arm, the in-flight RPC/transfer population
  // reaches steady state, and (for the new kernel) the arena and calendar
  // grow to their high-water sizes.
  engine.run_until(spec.warmup);
  const std::uint64_t fired0 = engine.total_fired();
  const std::uint64_t allocs0 = g_allocations;
  const double t0 = now_ms();
  engine.run_until(spec.horizon);
  ReplayResult r;
  r.ms = now_ms() - t0;
  r.fired = engine.total_fired() - fired0;
  r.allocs = g_allocations - allocs0;
  r.checksum = mix.checksum;
  r.events_per_sec =
      r.ms > 0.0 ? static_cast<double>(r.fired) / (r.ms / 1000.0) : 0.0;
  return r;
}

ReplayResult replay_new(sim::QueueKind kind, const MixSpec& spec) {
  sim::Engine engine(kind);
  ReplayResult r = replay(engine, spec);
  r.arena_high_water = engine.arena_high_water();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E-simkernel",
                     "event-kernel throughput: arena + calendar queue vs. "
                     "the legacy kernel");
  bench::print_note(smoke ? "mode: smoke (8x8 grid; CI signal)"
                          : "mode: full (32x32 grid, 1024 hosts)");

  MixSpec spec;
  if (smoke) {
    spec.sites = 8;
    spec.hosts_per_site = 8;
    spec.warmup = 24.0;
    spec.horizon = 120.0;
  }
  // Honest measured floor, not an aspiration: the redesign's steady-state
  // gain over the frozen baseline is ~1.55-1.9x wall-clock on this mix (the
  // original 5x target assumed an allocation-bound baseline — see
  // docs/SCALING.md).  The floors sit ~10-25% under the measured means so
  // scheduler/allocator noise on shared CI runners doesn't flake the gate.
  const double threshold = smoke ? 1.25 : 1.4;
  const int repeats = smoke ? 2 : 3;

  // Best-of-N for each engine: the mix is deterministic, so variance is
  // pure scheduler/allocator noise and the minimum is the honest figure.
  ReplayResult legacy, heap_ref, calendar;
  for (int r = 0; r < repeats; ++r) {
    {
      sim::legacy::LegacyEngine engine;
      ReplayResult res = replay(engine, spec);
      if (r == 0 || res.ms < legacy.ms) legacy = res;
    }
    {
      ReplayResult res = replay_new(sim::QueueKind::kBinaryHeapReference, spec);
      if (r == 0 || res.ms < heap_ref.ms) heap_ref = res;
    }
    {
      ReplayResult res = replay_new(sim::QueueKind::kCalendar, spec);
      if (r == 0 || res.ms < calendar.ms) calendar = res;
    }
  }

  const bool order_identical = legacy.checksum == calendar.checksum &&
                               legacy.checksum == heap_ref.checksum &&
                               legacy.fired == calendar.fired;
  const double speedup =
      calendar.ms > 0.0 ? legacy.ms / calendar.ms : 0.0;
  const double arena_speedup =
      heap_ref.ms > 0.0 ? legacy.ms / heap_ref.ms : 0.0;

  // Allocations per fired event inside the timed steady-state window; the
  // redesigned kernel's structural claim is that this is zero.
  const auto allocs_per_event = [](const ReplayResult& r) {
    return r.fired != 0
               ? static_cast<double>(r.allocs) / static_cast<double>(r.fired)
               : 0.0;
  };
  // Tolerate at most one allocation per million events: a replay whose
  // steady depth sits on a calendar resize boundary may trigger a rare
  // rebuild (which reserves scratch space), and that is the only allowed
  // source.
  const bool zero_alloc =
      calendar.allocs * 1'000'000ull <= calendar.fired;

  bench::Table table({"kernel", "events", "wall_ms", "events/sec",
                      "allocs/event", "speedup_vs_legacy",
                      "order_identical"});
  table.add_row({"legacy", std::to_string(legacy.fired),
                 bench::Table::num(legacy.ms),
                 bench::Table::num(legacy.events_per_sec, 0),
                 bench::Table::num(allocs_per_event(legacy), 3), "1.0", "-"});
  table.add_row({"heap-ref", std::to_string(heap_ref.fired),
                 bench::Table::num(heap_ref.ms),
                 bench::Table::num(heap_ref.events_per_sec, 0),
                 bench::Table::num(allocs_per_event(heap_ref), 3),
                 bench::Table::num(arena_speedup, 2),
                 order_identical ? "yes" : "NO"});
  table.add_row({"calendar", std::to_string(calendar.fired),
                 bench::Table::num(calendar.ms),
                 bench::Table::num(calendar.events_per_sec, 0),
                 bench::Table::num(allocs_per_event(calendar), 3),
                 bench::Table::num(speedup, 2),
                 order_identical ? "yes" : "NO"});
  table.print();
  bench::print_note("arena high water: " +
                    std::to_string(calendar.arena_high_water) + " slots");

  std::string json = "{\"bench\":\"sim_engine\",\"mode\":\"";
  json += smoke ? "smoke" : "full";
  json += "\",\"threshold_speedup\":" + json_num(threshold);
  json += ",\"grid\":{\"sites\":" + std::to_string(spec.sites) +
          ",\"hosts_per_site\":" + std::to_string(spec.hosts_per_site) +
          ",\"warmup_s\":" + json_num(spec.warmup) +
          ",\"horizon_s\":" + json_num(spec.horizon) + "}";
  json += ",\"events\":" + std::to_string(calendar.fired);
  json += ",\"legacy_ms\":" + json_num(legacy.ms);
  json += ",\"heap_ref_ms\":" + json_num(heap_ref.ms);
  json += ",\"calendar_ms\":" + json_num(calendar.ms);
  json += ",\"legacy_events_per_sec\":" + json_num(legacy.events_per_sec);
  json +=
      ",\"calendar_events_per_sec\":" + json_num(calendar.events_per_sec);
  json += ",\"legacy_allocs\":" + std::to_string(legacy.allocs);
  json += ",\"heap_ref_allocs\":" + std::to_string(heap_ref.allocs);
  json += ",\"calendar_allocs\":" + std::to_string(calendar.allocs);
  json += ",\"legacy_allocs_per_event\":" +
          json_num(allocs_per_event(legacy));
  json += ",\"calendar_allocs_per_event\":" +
          json_num(allocs_per_event(calendar));
  json += ",\"speedup\":" + json_num(speedup);
  json += ",\"heap_ref_speedup\":" + json_num(arena_speedup);
  json += ",\"arena_high_water\":" +
          std::to_string(calendar.arena_high_water);
  json += ",\"order_identical\":";
  json += order_identical ? "true" : "false";
  json += ",\"zero_alloc\":";
  json += zero_alloc ? "true" : "false";
  json += "}";

  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_SIM.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (!order_identical) {
      std::fprintf(stderr,
                   "CHECK FAILED: the kernels fired different event "
                   "sequences (checksum mismatch)\n");
      return 1;
    }
    if (!zero_alloc) {
      std::fprintf(stderr,
                   "CHECK FAILED: calendar kernel allocated %llu times over "
                   "%llu steady-state events (budget: 1 per million)\n",
                   static_cast<unsigned long long>(calendar.allocs),
                   static_cast<unsigned long long>(calendar.fired));
      return 1;
    }
    if (speedup < threshold) {
      std::fprintf(stderr,
                   "CHECK FAILED: calendar-kernel speedup %.2fx below the "
                   "%.2fx floor (see docs/SCALING.md)\n",
                   speedup, threshold);
      return 1;
    }
    std::printf("check: ok (speedup %.2fx >= %.2fx, zero steady-state "
                "allocations, firing order identical)\n",
                speedup, threshold);
  }
  return 0;
}
