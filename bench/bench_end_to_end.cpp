// E8 — the full pipeline, end to end: the paper's prototype claim
// ("successfully implemented ... on campus-wide resources that supports the
// application design, scheduling, and runtime aspects").
//
// Runs the two flagship applications — the Figure-1 Linear Equation Solver
// (real matrix kernels, verified answer) and the C3I track pipeline (real
// signal kernels) — across 1/2/4-site deployments and reports scheduling
// time, setup time, makespan, and wire traffic for each.
//
// Ends with one machine-readable JSON line (bench_fault_recovery-style);
// `--smoke` restricts the sweep to the 1-site deployments.
#include <cmath>
#include <cstring>

#include "bench_util.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

afg::Afg build_les(VdceEnvironment& env, std::size_t n, common::Rng& rng,
                   tasklib::Matrix& a_out, tasklib::Vector& b_out) {
  a_out = tasklib::Matrix::random_diag_dominant(n, rng);
  b_out.assign(n, 0.0);
  for (double& v : b_out) v = rng.uniform(-3, 3);
  env.store().put("/users/VDCE/u/matrix_A.dat", tasklib::Value(a_out),
                  a_out.size_bytes());
  env.store().put("/users/VDCE/u/vector_b.dat", tasklib::Value(b_out),
                  static_cast<double>(n * sizeof(double)));
  editor::AppBuilder app("LES");
  auto lu = app.task("LU", "matrix.lu_decomposition")
                .input_file("/users/VDCE/u/matrix_A.dat", a_out.size_bytes())
                .output_data(a_out.size_bytes());
  auto fwd = app.task("Fwd", "matrix.forward_substitution")
                 .output_data(a_out.size_bytes());
  auto bwd = app.task("Bwd", "matrix.backward_substitution")
                 .output_data(static_cast<double>(n * sizeof(double)));
  app.link(lu, fwd).value();
  fwd.input_file("/users/VDCE/u/vector_b.dat",
                 static_cast<double>(n * sizeof(double)));
  app.link(fwd, bwd).value();
  return app.build().value();
}

afg::Afg build_c3i(VdceEnvironment& env, common::Rng& rng) {
  const std::size_t samples = 2048;
  std::vector<tasklib::Signal> channels;
  for (int c = 0; c < 4; ++c) {
    channels.push_back(tasklib::make_test_signal(samples, {0.04}, 0.3, rng));
  }
  const double chan_bytes = static_cast<double>(samples * sizeof(double));
  auto taps = tasklib::design_lowpass(0.08, 63).value();
  env.store().put("http://sensors/array", tasklib::Value(channels),
                  4 * chan_bytes);
  env.store().put("http://sensors/steer",
                  tasklib::Value(std::vector<int>{0, 0, 0, 0}), 64);
  env.store().put("/users/VDCE/u/taps", tasklib::Value(taps),
                  static_cast<double>(taps.size() * sizeof(double)));
  env.store().put("/users/VDCE/u/thresh", tasklib::Value(0.4), 8);

  editor::AppBuilder app("C3I");
  auto beam = app.task("Beamform", "signal.beamform")
                  .input_file("http://sensors/array", 4 * chan_bytes)
                  .input_file("http://sensors/steer", 64)
                  .output_data(chan_bytes);
  auto filter =
      app.task("Filter", "signal.fir_filter").output_data(chan_bytes);
  auto detect = app.task("Detect", "signal.detect").output_data(1e4);
  auto fuse = app.task("Energy", "signal.energy").output_data(64);
  app.link(beam, filter).value();
  filter.input_file("/users/VDCE/u/taps",
                    static_cast<double>(taps.size() * sizeof(double)));
  app.link(filter, detect).value();
  detect.input_file("/users/VDCE/u/thresh", 8);
  app.link(filter, fuse).value();
  return app.build().value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdce;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_title("E8", "end-to-end pipeline: LES + C3I across sites");
  bench::print_note(
      "Real kernels; verified outputs.  sched = simulated bid-round time;\n"
      "setup = RAT fan-out + channel setup + staging; makespan = start\n"
      "signal -> last completion.");

  bench::Table table({"app", "sites", "sched (s)", "setup (s)",
                      "makespan (s)", "msgs", "verified"});
  auto json_num = [](double v) { return bench::json_num(v); };
  std::string json = "{\"bench\":\"end_to_end\",\"rows\":[";
  bool first_row = true;

  for (std::size_t sites : {1u, 2u, 4u}) {
    if (smoke && sites > 1u) continue;
    EnvironmentOptions options;
    options.runtime.exec_noise_cv = 0.0;
    options.runtime.k_nearest = sites - 1;
    TestbedSpec spec;
    spec.sites = sites;
    spec.hosts_per_site = 6;
    spec.seed = 61;
    for (const char* which : {"LES", "C3I"}) {
      VdceEnvironment env(make_testbed(spec), options);
      env.bring_up();
      env.add_user("u", "p");
      auto session = env.login(common::SiteId(0), "u", "p").value();
      common::Rng rng(8);

      tasklib::Matrix a;
      tasklib::Vector b;
      afg::Afg graph = std::string(which) == "LES"
                           ? build_les(env, 48, rng, a, b)
                           : build_c3i(env, rng);

      env.fabric().reset_stats();
      double t0 = env.now();
      auto rat = env.schedule(graph, session);
      if (!rat) return 1;
      double sched_time = env.now() - t0;
      auto report = env.execute_with_table(graph, *rat, session, {});
      if (!report || !report->success) return 1;

      bool verified = true;
      if (std::string(which) == "LES") {
        auto x = std::any_cast<tasklib::Vector>(
            report->exit_outputs.at(graph.find_task("Bwd")->value()));
        verified = tasklib::residual_inf(a, x, b) < 1e-8;
      } else {
        auto hits = std::any_cast<std::vector<std::size_t>>(
            report->exit_outputs.at(graph.find_task("Detect")->value()));
        auto strength = std::any_cast<double>(
            report->exit_outputs.at(graph.find_task("Energy")->value()));
        verified = !hits.empty() && strength > 0.0;
      }

      table.add_row({which, std::to_string(sites),
                     bench::Table::num(sched_time, 3),
                     bench::Table::num(report->setup_time(), 3),
                     bench::Table::num(report->makespan(), 2),
                     std::to_string(env.fabric().stats().sent),
                     verified ? "OK" : "FAILED"});
      if (!first_row) json += ",";
      first_row = false;
      json += std::string("{\"app\":\"") + which +
              "\",\"sites\":" + std::to_string(sites) +
              ",\"sched_s\":" + json_num(sched_time) +
              ",\"setup_s\":" + json_num(report->setup_time()) +
              ",\"makespan_s\":" + json_num(report->makespan()) +
              ",\"msgs\":" + std::to_string(env.fabric().stats().sent) +
              ",\"verified\":" + (verified ? "true" : "false") + "}";
      if (!verified) return 1;
    }
  }
  table.print();
  json += "]}";

  bench::print_note(
      "\nExpected shape: makespan is stable or improves with more sites\n"
      "(better machines to pick from); scheduling time and message counts\n"
      "grow with the candidate-site set — the cost of wide-area operation.");
  std::printf("\n%s\n", json.c_str());
  return 0;
}
