// Figure 4 reproduction: interactions among the Resource Controller
// components (Monitor daemons -> Group Managers -> Site Manager).
//
// The figure is an architecture diagram; the reproducible artifact is the
// message flow it depicts.  This bench runs the monitoring hierarchy on a
// live testbed with drifting background load and accounts every message by
// type and by hop, demonstrating each numbered interaction from the figure:
// (1) retrieving resource performance parameters, (2) monitoring VDCE
// resources, (3) updating the site repository, (4) sending the resource
// allocation table, (5) inter-site coordination.
#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("Fig. 4", "Resource Controller message flows");

  EnvironmentOptions options;
  options.background_load = true;
  options.load.mean_load = 0.4;
  options.runtime.monitor_period = 1.0;
  options.runtime.echo_period = 2.0;
  TestbedSpec spec;
  spec.sites = 2;
  spec.hosts_per_site = 8;
  VdceEnvironment env(make_testbed(spec), options);
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  // Phase A: 60s of pure monitoring.
  env.fabric().reset_stats();
  env.run_for(60.0);
  auto monitoring = env.fabric().stats();

  // Phase B: an application execution (RAT multicast + exec fan-out), plus
  // a host failure for interaction (5).  Fork-join: wide enough to span
  // machines and sites, so channels and the RAT fan-out are exercised.
  env.fabric().reset_stats();
  afg::Afg graph = afg::make_fork_join(6, 2, 2000, 2e5);
  common::HostId victim = env.topology().site(common::SiteId(1)).hosts[2];
  env.engine().schedule(8.0, [&] { env.topology().set_host_up(victim, false); });
  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(graph, session, run);
  auto execution = env.fabric().stats();

  bench::Table table({"interaction (Fig. 4)", "message type", "count"});
  auto row = [&](const char* what, const char* type,
                 const net::FabricStats& stats) {
    auto it = stats.sent_by_type.find(type);
    table.add_row({what, type,
                   std::to_string(it == stats.sent_by_type.end() ? 0
                                                                  : it->second)});
  };
  row("(2) monitor -> group mgr", "mon.report", monitoring);
  row("(3) group mgr -> site mgr (filtered)", "gm.report", monitoring);
  row("(2) echo packets", "gm.echo", monitoring);
  row("(2) echo replies", "gm.echo_reply", monitoring);
  row("(2) leader echo (site mgr)", "sm.echo", monitoring);
  row("(4) RAT to sites", "sm.rat", execution);
  row("(4) RAT to group leaders", "sm.rat_gm", execution);
  row("(4) exec requests to app ctrls", "gm.exec", execution);
  row("channel setup + ack", "dm.setup", execution);
  row("startup signal", "sm.start", execution);
  row("task completions", "ac.task_done", execution);
  row("failure report to site mgr", "gm.host_down", execution);
  row("(5) inter-site coordination", "sm.host_down", execution);
  table.print();

  std::printf(
      "\n60s monitoring on 16 hosts: %llu messages, %s on the wire "
      "(filter kept %.1f%% of raw reports)\n",
      static_cast<unsigned long long>(monitoring.sent),
      common::format_bytes(monitoring.bytes_sent).c_str(),
      100.0 *
          static_cast<double>(monitoring.sent_by_type.count("gm.report")
                                  ? monitoring.sent_by_type.at("gm.report")
                                  : 0) /
          static_cast<double>(monitoring.sent_by_type.at("mon.report")));
  std::printf("execution: success=%s, failures survived=%d\n",
              report && report->success ? "yes" : "no",
              report ? report->failures_survived : -1);
  return report && report->success ? 0 : 1;
}
