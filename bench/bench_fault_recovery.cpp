// E-chaos — fault-injection plane: detection latency, recovery overhead.
//
// Two sweeps over the same pinned fork-join workload, every trial driven by
// a chaos::FaultPlan (so each configuration is deterministic and
// replayable from its seed):
//
//   * crash sweep — K = 1..3 pinned hosts die mid-run; measures the
//     crash -> coordinator-reaction latency (RecoveryEvent.detected_at),
//     task downtime, and makespan overhead versus the clean run;
//   * loss sweep — dm.* traffic dropped at rates 0..0.5 for the whole run;
//     measures how much the retry/stall safety nets stretch the makespan.
//
// Emits a single JSON object on stdout (in addition to the usual table) so
// CI and notebooks can track the series.  `--smoke` runs one trial per
// configuration for a fast CI signal.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "editor/builder.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct TrialResult {
  bool success = false;
  double makespan = 0.0;
  double mean_detect = 0.0;   ///< crash time -> coordinator reaction
  double mean_downtime = 0.0; ///< detection -> successful attempt start
  int recoveries = 0;
  std::uint64_t dropped = 0;
};

EnvironmentOptions base_options(chaos::FaultPlan plan) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  // The pinned stages run for tens of simulated seconds; widen the stall
  // window so the lost-message safety net doesn't dominate the recovery
  // counts we're measuring.
  options.runtime.stall_sweeps = 8;
  options.faults = std::move(plan);
  return options;
}

/// Three parallel stages pinned to known machines feeding a join — the
/// same shape for every trial, so makespans are comparable.
afg::Afg make_workload(const std::vector<std::string>& pinned) {
  editor::AppBuilder builder("fault-recovery-bench");
  auto join = builder.task("join", "synthetic.w500");
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    auto stage = builder.task("par" + std::to_string(i), "synthetic.w2000")
                     .prefer_machine(pinned[i])
                     .output_data(1e5);
    if (!builder.link(stage, join).has_value()) std::abort();
  }
  return builder.build().value();
}

TrialResult run_trial(chaos::FaultPlan plan, std::uint64_t topology_seed,
                      const std::vector<double>& crash_times) {
  net::Topology topology = make_campus_pair(topology_seed);
  const net::Site& site0 = topology.site(common::SiteId(0));
  std::vector<std::string> pinned;
  for (common::HostId h : site0.hosts) {
    if (h == site0.server) continue;
    pinned.push_back(topology.host(h).spec.name);
    if (pinned.size() == 3) break;
  }
  for (std::size_t k = 0; k < crash_times.size(); ++k) {
    plan.crash(pinned[k], crash_times[k]);
  }

  VdceEnvironment env(std::move(topology), base_options(std::move(plan)));
  env.bring_up();
  env.add_user("u", "p");
  Session session = env.login(common::SiteId(0), "u", "p").value();

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(make_workload(pinned), session, run);

  TrialResult result;
  if (!report.has_value()) return result;
  result.success = report->success;
  result.makespan = report->makespan();
  result.recoveries = static_cast<int>(report->recoveries.size());
  if (env.chaos() != nullptr) result.dropped = env.chaos()->messages_dropped();

  common::Stats detect, downtime;
  for (const runtime::RecoveryEvent& r : report->recoveries) {
    if (r.reason != "host_down") continue;
    // Attribute the reaction to the closest preceding crash.
    double crash_at = 0.0;
    for (double t : crash_times) {
      if (t <= r.detected_at && t > crash_at) crash_at = t;
    }
    detect.add(r.detected_at - crash_at);
    if (r.downtime > 0) downtime.add(r.downtime);
  }
  result.mean_detect = detect.count() ? detect.mean() : 0.0;
  result.mean_downtime = downtime.count() ? downtime.mean() : 0.0;
  return result;
}

std::string json_num(double v) { return vdce::bench::json_num(v); }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int trials = smoke ? 1 : 5;

  bench::print_title("E-chaos", "fault injection: detection and recovery cost");
  bench::print_note(
      "pinned 3-wide fork-join; crashes and loss injected via FaultPlan.\n"
      "overhead = makespan / clean makespan (same topology, no faults).");

  // Clean baseline.
  common::Stats clean;
  for (int t = 0; t < trials; ++t) {
    TrialResult r = run_trial(chaos::FaultPlan{}.name("clean"),
                              13 + static_cast<std::uint64_t>(t), {});
    if (r.success) clean.add(r.makespan);
  }
  const double clean_makespan = clean.count() ? clean.mean() : 0.0;

  std::string json = "{\"bench\":\"fault_recovery\",\"trials\":" +
                     std::to_string(trials) +
                     ",\"clean_makespan_s\":" + json_num(clean_makespan);

  // --- crash sweep ---------------------------------------------------------
  bench::Table crash_table({"hosts killed", "survived", "mean detect (s)",
                            "mean downtime (s)", "recoveries",
                            "makespan overhead"});
  json += ",\"crash_sweep\":[";
  for (int kills = 1; kills <= 3; ++kills) {
    common::Stats detect, downtime, makespan;
    int survived = 0, recoveries = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> crash_times;
      for (int k = 0; k < kills; ++k) crash_times.push_back(1.0 + 0.7 * k);
      chaos::FaultPlan plan;
      plan.name("crash-k" + std::to_string(kills))
          .seed(100 + static_cast<std::uint64_t>(t));
      TrialResult r = run_trial(std::move(plan),
                                13 + static_cast<std::uint64_t>(t),
                                crash_times);
      if (r.success) {
        ++survived;
        makespan.add(r.makespan);
        if (r.mean_detect > 0) detect.add(r.mean_detect);
        if (r.mean_downtime > 0) downtime.add(r.mean_downtime);
      }
      recoveries += r.recoveries;
    }
    const double overhead =
        clean_makespan > 0 && makespan.count()
            ? makespan.mean() / clean_makespan
            : 0.0;
    crash_table.add_row({std::to_string(kills),
                         std::to_string(survived) + "/" + std::to_string(trials),
                         bench::Table::num(detect.count() ? detect.mean() : 0),
                         bench::Table::num(downtime.count() ? downtime.mean() : 0),
                         std::to_string(recoveries),
                         bench::Table::num(overhead, 2) + "x"});
    if (kills > 1) json += ",";
    json += "{\"kills\":" + std::to_string(kills) +
            ",\"survived\":" + std::to_string(survived) +
            ",\"mean_detect_s\":" + json_num(detect.count() ? detect.mean() : 0) +
            ",\"mean_downtime_s\":" +
            json_num(downtime.count() ? downtime.mean() : 0) +
            ",\"recoveries\":" + std::to_string(recoveries) +
            ",\"makespan_overhead\":" + json_num(overhead) + "}";
  }
  crash_table.print();
  json += "]";

  // --- loss sweep ----------------------------------------------------------
  bench::Table loss_table({"dm.* loss rate", "survived", "msgs dropped",
                           "recoveries", "makespan overhead"});
  json += ",\"loss_sweep\":[";
  bool first = true;
  for (double rate : {0.0, 0.1, 0.3, 0.5}) {
    common::Stats makespan;
    int survived = 0, recoveries = 0;
    std::uint64_t dropped = 0;
    for (int t = 0; t < trials; ++t) {
      chaos::FaultPlan plan;
      plan.name("loss").seed(200 + static_cast<std::uint64_t>(t));
      if (rate > 0) plan.loss(rate, 0.0, 1e6, "dm.");
      TrialResult r = run_trial(std::move(plan),
                                13 + static_cast<std::uint64_t>(t), {});
      if (r.success) {
        ++survived;
        makespan.add(r.makespan);
      }
      recoveries += r.recoveries;
      dropped += r.dropped;
    }
    const double overhead =
        clean_makespan > 0 && makespan.count()
            ? makespan.mean() / clean_makespan
            : 0.0;
    loss_table.add_row({bench::Table::num(rate, 2),
                        std::to_string(survived) + "/" + std::to_string(trials),
                        std::to_string(dropped), std::to_string(recoveries),
                        bench::Table::num(overhead, 2) + "x"});
    if (!first) json += ",";
    first = false;
    json += "{\"rate\":" + json_num(rate) +
            ",\"survived\":" + std::to_string(survived) +
            ",\"dropped\":" + std::to_string(dropped) +
            ",\"recoveries\":" + std::to_string(recoveries) +
            ",\"makespan_overhead\":" + json_num(overhead) + "}";
  }
  loss_table.print();
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  return 0;
}
