// Micro-benchmarks (google-benchmark) for the hot paths underneath the
// experiment harness: the discrete-event kernel, fabric delivery, level
// computation, the schedulers themselves, and the compute kernels.
#include <benchmark/benchmark.h>

#include <memory>

#include "afg/generate.hpp"
#include "afg/levels.hpp"
#include "db/site_repository.hpp"
#include "net/fabric.hpp"
#include "sched/baselines.hpp"
#include "sched/site_scheduler.hpp"
#include "sim/engine.hpp"
#include "tasklib/matrix.hpp"
#include "tasklib/registry.hpp"
#include "tasklib/signal.hpp"
#include "vdce/testbed.hpp"

namespace {

using namespace vdce;

// ---- sim kernel -------------------------------------------------------------

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int sink = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_PeriodicTimers(benchmark::State& state) {
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int sink = 0;
    for (std::size_t i = 0; i < timers; ++i) {
      engine.every(1.0 + static_cast<double>(i % 7) * 0.1,
                   [&sink] { ++sink; });
    }
    engine.run_until(100.0);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_PeriodicTimers)->Arg(16)->Arg(256);

// ---- fabric -----------------------------------------------------------------

void BM_FabricSendDeliver(benchmark::State& state) {
  net::Topology topology = make_campus_pair();
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    net::Fabric fabric(engine, topology);
    int sink = 0;
    for (const net::Host& h : topology.hosts()) {
      fabric.bind(h.id, [&sink](const net::Message&) { ++sink; });
    }
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      (void)fabric.send(net::Message{
          common::HostId(static_cast<std::uint32_t>(i % 12)),
          common::HostId(static_cast<std::uint32_t>((i + 5) % 12)), "bench",
          128, {}});
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FabricSendDeliver);

// ---- scheduling --------------------------------------------------------------

struct SchedBench {
  net::Topology topology;
  tasklib::TaskRegistry registry;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  sched::SchedulerContext context;

  SchedBench() {
    TestbedSpec spec;
    spec.sites = 4;
    spec.hosts_per_site = 8;
    topology = make_testbed(spec);
    tasklib::register_standard_libraries(registry);
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      registry.seed_database(repo->tasks());
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = 3;
  }
};

void BM_LevelComputation(benchmark::State& state) {
  common::Rng rng(1);
  afg::LayeredDagSpec spec;
  spec.tasks = static_cast<std::size_t>(state.range(0));
  spec.width = 10;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  for (auto _ : state) {
    auto levels =
        afg::compute_levels(graph, [](const afg::TaskNode&) { return 1.0; });
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_LevelComputation)->Arg(100)->Arg(400);

void BM_VdceScheduler(benchmark::State& state) {
  SchedBench bench;
  common::Rng rng(2);
  afg::LayeredDagSpec spec;
  spec.tasks = static_cast<std::size_t>(state.range(0));
  spec.width = 10;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  sched::VdceSiteScheduler scheduler;
  for (auto _ : state) {
    auto table = scheduler.schedule(graph, bench.context);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VdceScheduler)->Arg(50)->Arg(200);

void BM_MinMinScheduler(benchmark::State& state) {
  SchedBench bench;
  common::Rng rng(2);
  afg::LayeredDagSpec spec;
  spec.tasks = static_cast<std::size_t>(state.range(0));
  spec.width = 10;
  afg::Afg graph = afg::make_layered_dag(spec, rng);
  sched::MinMinScheduler scheduler;
  for (auto _ : state) {
    auto table = scheduler.schedule(graph, bench.context);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_MinMinScheduler)->Arg(50);

// ---- kernels -----------------------------------------------------------------

void BM_MatrixMultiply(benchmark::State& state) {
  common::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  tasklib::Matrix a = tasklib::Matrix::random(n, n, rng);
  tasklib::Matrix b = tasklib::Matrix::random(n, n, rng);
  for (auto _ : state) {
    auto c = tasklib::multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(256);

void BM_LuDecompose(benchmark::State& state) {
  common::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  for (auto _ : state) {
    auto lu = tasklib::lu_decompose(a);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_LuDecompose)->Arg(64)->Arg(256);

void BM_Fft(benchmark::State& state) {
  common::Rng rng(5);
  tasklib::Signal s = tasklib::make_test_signal(
      static_cast<std::size_t>(state.range(0)), {0.1}, 0.1, rng);
  for (auto _ : state) {
    auto spec = tasklib::fft(s);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
