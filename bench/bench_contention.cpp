// E10 — multi-application contention: the environment under offered load.
//
// The paper positions VDCE as a shared campus utility; this bench submits
// streams of applications from independent users at Poisson arrivals and
// measures how makespan stretches as the offered load grows — the queueing
// behaviour a shared scheduler must exhibit.  Each arrival is scheduled
// against the then-current database state (so later apps see machines the
// earlier ones occupy via monitoring) and executed concurrently on the
// same fabric.
#include <functional>
#include <memory>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sched/support.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

struct LoadResult {
  double mean_makespan = 0.0;
  double p95_makespan = 0.0;
  double mean_stretch = 0.0;  ///< makespan / solo-run makespan
  int completed = 0;
};

LoadResult run_offered_load(int apps, double mean_interarrival,
                            double solo_makespan) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  TestbedSpec spec;
  spec.sites = 2;
  spec.hosts_per_site = 6;
  spec.seed = 71;
  VdceEnvironment env(make_testbed(spec), options);
  env.bring_up();
  env.add_user("u", "p");
  auto session = env.login(common::SiteId(0), "u", "p").value();

  runtime::SiteManager& sm = env.site_manager(common::SiteId(0));
  common::Rng arrivals(55);
  common::Stats makespans;
  int completed = 0;

  // Each arrival: schedule with the distributed pipeline, then execute.
  // The submission chain runs in simulated time via engine callbacks.
  struct Submitter {
    VdceEnvironment& env;
    runtime::SiteManager& sm;
    Session& session;
    common::Rng& arrivals;
    common::Stats& makespans;
    int& completed;
    double mean_interarrival;
    int remaining;
    std::uint32_t next_app = 500;

    void submit_next() {
      if (remaining-- == 0) return;
      afg::Afg graph = afg::make_fork_join(4, 2, 800, 1e5,
                                           "app" + std::to_string(next_app));
      common::AppId app(next_app++);
      auto graph_ptr = std::make_shared<const afg::Afg>(std::move(graph));
      sm.schedule_application(
          app, graph_ptr, {},
          [this, app, graph_ptr](
              common::Expected<sched::ResourceAllocationTable> table) {
            if (!table) return;
            std::vector<db::TaskPerfRecord> perf;
            for (const afg::TaskNode& n : graph_ptr->tasks()) {
              perf.push_back(*sched::resolve_perf(
                  n, env.repo(common::SiteId(0)).tasks()));
            }
            sm.execute_application(
                app, *graph_ptr, std::move(*table), std::move(perf), {}, {},
                [this](runtime::ExecutionReport report) {
                  if (report.success) {
                    makespans.add(report.makespan());
                    ++completed;
                  }
                });
          });
      env.engine().schedule(arrivals.exponential(mean_interarrival),
                            [this] { submit_next(); });
    }
  };

  Submitter submitter{env,      sm,        session, arrivals,
                      makespans, completed, mean_interarrival, apps};
  submitter.submit_next();
  env.run_for(mean_interarrival * apps + 600.0);

  LoadResult result;
  result.completed = completed;
  if (!makespans.empty()) {
    result.mean_makespan = makespans.mean();
    result.p95_makespan = makespans.percentile(95);
    result.mean_stretch = makespans.mean() / solo_makespan;
  }
  return result;
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("E10", "multi-application contention");
  bench::print_note(
      "20 fork-join apps (4x2, 800 MFLOP/task) from one site, Poisson\n"
      "arrivals; 2 sites x 6 hosts.  stretch = makespan / solo makespan.");

  // Solo baseline.
  double solo;
  {
    EnvironmentOptions options;
    options.runtime.exec_noise_cv = 0.0;
    TestbedSpec spec;
    spec.sites = 2;
    spec.hosts_per_site = 6;
    spec.seed = 71;
    VdceEnvironment env(make_testbed(spec), options);
    env.bring_up();
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();
    afg::Afg graph = afg::make_fork_join(4, 2, 800, 1e5);
    RunOptions run;
    run.real_kernels = false;
    auto report = env.run_application(graph, session, run);
    if (!report || !report->success) return 1;
    solo = report->makespan();
  }

  bench::Table table({"mean interarrival (s)", "completed", "mean makespan",
                      "p95 makespan", "stretch"});
  for (double interarrival : {60.0, 20.0, 10.0, 5.0, 2.0}) {
    LoadResult r = run_offered_load(20, interarrival, solo);
    table.add_row({bench::Table::num(interarrival, 0),
                   std::to_string(r.completed),
                   bench::Table::num(r.mean_makespan, 2),
                   bench::Table::num(r.p95_makespan, 2),
                   bench::Table::num(r.mean_stretch, 2) + "x"});
    if (r.completed < 20) return 1;
  }
  table.print();

  std::printf("\nsolo makespan: %.2fs\n", solo);
  bench::print_note(
      "Expected shape: at sparse arrivals stretch ~ 1 (apps rarely\n"
      "overlap); as the interarrival approaches the service time, apps\n"
      "contend for the same best machines and stretch grows — classic\n"
      "queueing, with the scheduler's monitoring feedback damping it.");
  return 0;
}
