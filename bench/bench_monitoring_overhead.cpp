// E4 — §4.1: the Group Manager's significant-change filter trades Site
// Manager traffic against database freshness.
//
// Sweeps the filter threshold on a live testbed with drifting load and
// reports: raw monitor reports, reports forwarded to the Site Manager
// (the filter's output), wire bytes, and the staleness of the resource
// database (mean |db load - true load| sampled at the end).
//
// Second section: the cost of the observability layer itself.  The same
// monitored testbed runs with observability off (flight recorder disabled),
// off (flight recorder on — the default), metrics only, metrics + the
// health plane, and metrics + full tracing; the wall-clock deltas are the
// per-config overhead.  This is the bench that backs docs/OBSERVABILITY.md's
// zero-cost claims, including "the always-on flight recorder has no
// measurable idle overhead" and the health plane's <= 5% budget.
//
// Ends with one machine-readable JSON line (bench_fault_recovery-style) so
// CI and notebooks can track the series.  `--smoke` shortens the horizon;
// `--check` exits non-zero if the health row exceeds metrics-only by more
// than 5% (with an absolute noise floor for short smoke runs).
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "vdce/vdce.hpp"

namespace {

std::string json_num(double v) { return vdce::bench::json_num(v); }

/// Wall-clock milliseconds of `run_for(horizon)` on a fresh monitored
/// testbed under `options`; best of `reps` to shave scheduler noise.
double timed_run_ms(vdce::EnvironmentOptions options, double horizon,
                    int reps) {
  using namespace vdce;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    TestbedSpec spec;
    spec.sites = 2;
    spec.hosts_per_site = 8;
    VdceEnvironment env(make_testbed(spec), options);
    env.bring_up();
    const auto t0 = std::chrono::steady_clock::now();
    env.run_for(horizon);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdce;
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const double horizon = smoke ? 20.0 : 120.0;
  const int reps = smoke ? 1 : 3;

  bench::print_title("E4", "significant-change filter: traffic vs staleness");
  bench::print_note(
      "16 hosts, " + bench::Table::num(horizon, 0) +
      "s of monitoring, background load volatility 0.15,\n"
      "monitor period 1s.  forwarded% = gm.report / mon.report.");

  bench::Table table({"threshold", "mon.report", "gm.report", "forwarded%",
                      "bytes", "db error"});
  std::string json = "{\"bench\":\"monitoring_overhead\",\"horizon_s\":" +
                     json_num(horizon) + ",\"sweep\":[";
  bool first_row = true;

  for (double threshold : {0.0, 0.05, 0.15, 0.3, 0.6, 1.2}) {
    EnvironmentOptions options;
    options.background_load = true;
    options.load.volatility = 0.15;
    options.load.mean_load = 0.5;
    options.runtime.monitor_period = 1.0;
    options.runtime.significant_change = threshold;
    // Cross-check the fabric's per-type message counts against the daemons'
    // own meters (monitor.samples / monitor.reports_forwarded).
    options.metrics.enabled = true;
    TestbedSpec spec;
    spec.sites = 2;
    spec.hosts_per_site = 8;
    VdceEnvironment env(make_testbed(spec), options);
    env.bring_up();
    env.fabric().reset_stats();
    env.run_for(horizon);

    const auto& stats = env.fabric().stats();
    auto count = [&](const char* type) -> std::uint64_t {
      auto it = stats.sent_by_type.find(type);
      return it == stats.sent_by_type.end() ? 0 : it->second;
    };

    // Staleness: compare every host's db-recorded load to ground truth.
    common::Stats error;
    for (const net::Host& h : env.hosts()) {
      auto rec = env.repo(h.site).resources().find(h.id);
      if (rec && !rec->workload_history.empty()) {
        error.add(std::fabs(rec->current_load() - h.state.cpu_load));
      }
    }

    // The daemon meters and the wire counts must agree: every sample is one
    // mon.report message, every forwarded report one gm.report.
    const std::uint64_t samples = env.metrics().counter_value("monitor.samples");
    const std::uint64_t forwarded =
        env.metrics().counter_value("monitor.reports_forwarded");
    if (samples != count("mon.report") || forwarded != count("gm.report")) {
      bench::print_note("WARNING: obs meters disagree with fabric counts");
    }

    const double forwarded_pct =
        100.0 * static_cast<double>(count("gm.report")) /
        static_cast<double>(count("mon.report"));
    table.add_row(
        {bench::Table::num(threshold, 2), std::to_string(count("mon.report")),
         std::to_string(count("gm.report")),
         bench::Table::num(forwarded_pct, 1),
         common::format_bytes(stats.bytes_sent),
         bench::Table::num(error.empty() ? 0.0 : error.mean(), 3)});
    if (!first_row) json += ",";
    first_row = false;
    json += "{\"threshold\":" + json_num(threshold) +
            ",\"mon_reports\":" + std::to_string(count("mon.report")) +
            ",\"gm_reports\":" + std::to_string(count("gm.report")) +
            ",\"forwarded_pct\":" + json_num(forwarded_pct) +
            ",\"bytes\":" + json_num(stats.bytes_sent) +
            ",\"db_error\":" + json_num(error.empty() ? 0.0 : error.mean()) +
            "}";
  }
  table.print();
  json += "]";

  // --- observability overhead ------------------------------------------------
  bench::print_note(
      "\nObservability overhead: identical monitored run under five configs\n"
      "(wall-clock, best of " +
      std::to_string(reps) + "):");

  EnvironmentOptions base;
  base.background_load = true;
  base.load.volatility = 0.15;
  base.load.mean_load = 0.5;
  base.runtime.monitor_period = 1.0;

  EnvironmentOptions off_noflight = base;
  off_noflight.flight.enabled = false;
  EnvironmentOptions off = base;  // flight recorder on: the default
  EnvironmentOptions metrics = base;
  metrics.metrics.enabled = true;
  EnvironmentOptions health = base;
  health.metrics.enabled = true;
  health.health.enabled = true;
  EnvironmentOptions full = base;
  full.metrics.enabled = true;
  full.trace.enabled = true;

  struct Mode {
    const char* name;
    EnvironmentOptions options;
  };
  const Mode modes[] = {{"off_noflight", off_noflight},
                        {"off", off},
                        {"metrics", metrics},
                        {"health", health},
                        {"full_trace", full}};

  bench::Table overhead({"config", "wall (ms)", "vs off_noflight"});
  double baseline_ms = 0.0;
  double metrics_ms = 0.0;
  double health_ms = 0.0;
  json += ",\"obs_overhead\":[";
  for (std::size_t i = 0; i < std::size(modes); ++i) {
    const double ms = timed_run_ms(modes[i].options, horizon, reps);
    if (i == 0) baseline_ms = ms;
    if (std::strcmp(modes[i].name, "metrics") == 0) metrics_ms = ms;
    if (std::strcmp(modes[i].name, "health") == 0) health_ms = ms;
    const double pct =
        baseline_ms > 0 ? (ms - baseline_ms) / baseline_ms * 100.0 : 0.0;
    overhead.add_row({modes[i].name, bench::Table::num(ms, 2),
                      (pct >= 0 ? "+" : "") + bench::Table::num(pct, 2) + "%"});
    if (i > 0) json += ",";
    json += std::string("{\"mode\":\"") + modes[i].name +
            "\",\"wall_ms\":" + json_num(ms) +
            ",\"overhead_pct\":" + json_num(pct) + "}";
  }
  json += "]}";
  overhead.print();

  bench::print_note(
      "\nExpected shape: forwarded% falls sharply with the threshold while\n"
      "db error rises — the knee (threshold ~ load noise) is why the paper\n"
      "forwards only 'considerable' changes.  The 'off' row (flight recorder\n"
      "armed, everything else dark) should be indistinguishable from\n"
      "off_noflight: the always-on ring is a guarded handful of stores.\n"
      "The health row (metrics + windowed series + rules + probes) must\n"
      "stay within 5% of metrics-only — its budget in docs/OBSERVABILITY.md.");
  std::printf("\n%s\n", json.c_str());

  if (check) {
    // Gate the health plane against its documented budget.  Short smoke runs
    // jitter by tens of ms on shared CI hosts, so an absolute floor keeps a
    // 12 ms run from failing on a 1 ms blip.
    const double budget_ms = std::max(metrics_ms * 1.05, metrics_ms + 30.0);
    if (health_ms > budget_ms) {
      std::printf("check: FAILED (health %.2f ms vs metrics %.2f ms; budget "
                  "%.2f ms)\n",
                  health_ms, metrics_ms, budget_ms);
      return 1;
    }
    std::printf("check: ok (health %.2f ms within %.2f ms budget over "
                "metrics %.2f ms)\n",
                health_ms, budget_ms, metrics_ms);
  }
  return 0;
}
