// E4 — §4.1: the Group Manager's significant-change filter trades Site
// Manager traffic against database freshness.
//
// Sweeps the filter threshold on a live testbed with drifting load and
// reports: raw monitor reports, reports forwarded to the Site Manager
// (the filter's output), wire bytes, and the staleness of the resource
// database (mean |db load - true load| sampled at the end).
#include <cmath>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("E4", "significant-change filter: traffic vs staleness");
  bench::print_note(
      "16 hosts, 120s of monitoring, background load volatility 0.15,\n"
      "monitor period 1s.  forwarded%% = gm.report / mon.report.");

  bench::Table table({"threshold", "mon.report", "gm.report", "forwarded%",
                      "bytes", "db error"});

  for (double threshold : {0.0, 0.05, 0.15, 0.3, 0.6, 1.2}) {
    EnvironmentOptions options;
    options.background_load = true;
    options.load.volatility = 0.15;
    options.load.mean_load = 0.5;
    options.runtime.monitor_period = 1.0;
    options.runtime.significant_change = threshold;
    // Cross-check the fabric's per-type message counts against the daemons'
    // own meters (monitor.samples / monitor.reports_forwarded).
    options.metrics.enabled = true;
    TestbedSpec spec;
    spec.sites = 2;
    spec.hosts_per_site = 8;
    VdceEnvironment env(make_testbed(spec), options);
    env.bring_up();
    env.fabric().reset_stats();
    env.run_for(120.0);

    const auto& stats = env.fabric().stats();
    auto count = [&](const char* type) -> std::uint64_t {
      auto it = stats.sent_by_type.find(type);
      return it == stats.sent_by_type.end() ? 0 : it->second;
    };

    // Staleness: compare every host's db-recorded load to ground truth.
    common::Stats error;
    for (const net::Host& h : env.hosts()) {
      auto rec = env.repo(h.site).resources().find(h.id);
      if (rec && !rec->workload_history.empty()) {
        error.add(std::fabs(rec->current_load() - h.state.cpu_load));
      }
    }

    // The daemon meters and the wire counts must agree: every sample is one
    // mon.report message, every forwarded report one gm.report.
    const std::uint64_t samples = env.metrics().counter_value("monitor.samples");
    const std::uint64_t forwarded =
        env.metrics().counter_value("monitor.reports_forwarded");
    if (samples != count("mon.report") || forwarded != count("gm.report")) {
      bench::print_note("WARNING: obs meters disagree with fabric counts");
    }

    table.add_row(
        {bench::Table::num(threshold, 2), std::to_string(count("mon.report")),
         std::to_string(count("gm.report")),
         bench::Table::num(100.0 * static_cast<double>(count("gm.report")) /
                               static_cast<double>(count("mon.report")),
                           1),
         common::format_bytes(stats.bytes_sent),
         bench::Table::num(error.empty() ? 0.0 : error.mean(), 3)});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: forwarded%% falls sharply with the threshold while\n"
      "db error rises — the knee (threshold ~ load noise) is why the paper\n"
      "forwards only 'considerable' changes.");
  return 0;
}
