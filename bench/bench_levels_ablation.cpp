// A1 — ablation of the §3 priority rule, isolated from placement.
//
// The paper computes task priorities as *computation-only* levels.  Holding
// the entire placement machinery fixed (the availability-aware Fig. 2 loop)
// and swapping only the priority rule answers: how much does the level
// definition matter?
//
//   paper-levels : largest sum of computation costs to an exit (the paper)
//   comm-levels  : levels including mean edge-transfer costs (upward rank)
//   fifo         : no levels at all — ready tasks in insertion order
//
// Swept over graph shapes and two communication regimes (cheap LAN-sized
// edges vs heavy WAN-sized edges) where the rules should diverge most.
#include <memory>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "db/site_repository.hpp"
#include "sched/site_scheduler.hpp"
#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

double mean_makespan(sched::PriorityMode priority,
                     const sched::SchedulerContext& context,
                     const std::string& shape, double edge_bytes) {
  sched::SchedulingPolicy options;
  options.priority = priority;
  sched::VdceSiteScheduler scheduler(options);
  common::Stats stats;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    common::Rng rng(300 + seed);
    afg::Afg graph("g");
    if (shape == "layered") {
      afg::LayeredDagSpec spec;
      spec.tasks = 60;
      spec.width = 8;
      spec.min_output_bytes = edge_bytes / 2;
      spec.max_output_bytes = edge_bytes * 2;
      graph = afg::make_layered_dag(spec, rng);
    } else if (shape == "forkjoin") {
      graph = afg::make_fork_join(8, 3, 600, edge_bytes);
    } else {
      graph = afg::make_reduction_tree(16, 500, edge_bytes);
    }
    auto table = scheduler.schedule(graph, context);
    if (table) stats.add(table->schedule_length);
  }
  return stats.empty() ? -1.0 : stats.mean();
}

}  // namespace

int main() {
  using namespace vdce;
  bench::print_title("A1", "priority-rule ablation (placement held fixed)");
  bench::print_note(
      "Mean schedule length (s) over 6 seeds; same availability-aware\n"
      "placement loop, only the ready-list priority differs.");

  TestbedSpec tb;
  tb.sites = 4;
  tb.hosts_per_site = 8;
  tb.seed = 31;
  net::Topology topology = make_testbed(tb);
  tasklib::TaskRegistry registry;
  tasklib::register_standard_libraries(registry);
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  for (const net::Site& site : topology.sites()) {
    auto repo = std::make_unique<db::SiteRepository>(site.id);
    repo->register_site_hosts(topology);
    registry.seed_database(repo->tasks());
    repos.push_back(std::move(repo));
  }
  predict::Predictor predictor;
  sched::SchedulerContext context;
  context.topology = &topology;
  for (auto& r : repos) context.repos.push_back(r.get());
  context.predictor = &predictor;
  context.local_site = common::SiteId(0);
  context.k_nearest = 3;

  bench::Table table({"shape", "edges", "paper-levels", "comm-levels",
                      "fifo"});
  for (const char* shape : {"layered", "forkjoin", "reduce"}) {
    for (double edge_bytes : {1e4, 5e6}) {
      std::vector<std::string> row{
          shape, edge_bytes < 1e5 ? "light (10KB)" : "heavy (5MB)"};
      for (auto priority :
           {sched::PriorityMode::kPaperLevels, sched::PriorityMode::kCommLevels,
            sched::PriorityMode::kFifo}) {
        row.push_back(bench::Table::num(
            mean_makespan(priority, context, shape, edge_bytes), 2));
      }
      table.add_row(std::move(row));
    }
  }
  table.print();

  bench::print_note(
      "\nExpected shape: on precedence-rich layered DAGs the paper's levels\n"
      "beat FIFO (critical-path tasks start first); on symmetric shapes\n"
      "(fork-join, reduction) priority barely matters.  Notably, comm-aware\n"
      "levels do NOT improve on computation-only levels here — combined\n"
      "with E1 (HEFT vs vdce-level) this shows HEFT's edge comes from\n"
      "insertion-based placement, not its rank definition, vindicating the\n"
      "paper's simpler priority rule.");
  return 0;
}
