// E3 — the performance-prediction core (§3): accuracy under load dynamics
// and the value of measured history.
//
// On a live testbed with drifting background load, predictions are made
// from the *database view* (fed by the monitoring pipeline) and compared
// against actual execution times from the ground-truth model.  Sweeps the
// background volatility, and contrasts the uncalibrated analytic model with
// the measurement-calibrated path after repeated executions.
#include <cmath>
#include <cstdio>

#include "afg/generate.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sched/support.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;
  bench::print_title("E3", "prediction error vs load volatility + calibration");
  bench::print_note(
      "error = |predicted - actual| / actual per task execution.\n"
      "analytic = db-view model; calibrated = after 3 prior runs recorded\n"
      "measured times into the task-performance database.");

  bench::Table table({"volatility", "mean load", "analytic err",
                      "calibrated err", "improvement"});

  for (double volatility : {0.0, 0.1, 0.2, 0.4}) {
    EnvironmentOptions options;
    options.background_load = true;
    options.load.volatility = volatility;
    options.load.mean_load = 0.5;
    options.runtime.monitor_period = 1.0;
    options.runtime.exec_noise_cv = 0.05;
    VdceEnvironment env(make_campus_pair(3), options);
    env.bring_up();
    env.add_user("u", "p");
    auto session = env.login(common::SiteId(0), "u", "p").value();
    env.run_for(15.0);  // monitoring history warm-up

    afg::Afg graph = afg::make_independent(10, 2000);
    RunOptions run;
    run.real_kernels = false;

    common::Stats analytic_err;
    common::Stats calibrated_err;
    double load_sum = 0.0;
    int runs = 0;

    // 5 runs: runs 0-2 seed measured history, runs 3-4 score both paths.
    for (int iteration = 0; iteration < 5; ++iteration) {
      auto table_result = env.schedule(graph, session);
      if (!table_result) {
        std::fprintf(stderr, "schedule failed: %s\n",
                     table_result.error().to_string().c_str());
        return 1;
      }
      auto report = env.execute_with_table(graph, *table_result, session, run);
      if (!report || !report->success) {
        std::fprintf(stderr, "execution failed: %s\n",
                     report ? report->failure_reason.c_str()
                            : report.error().to_string().c_str());
        return 1;
      }
      env.run_for(5.0);

      if (iteration < 3) continue;
      for (const auto& outcome : report->outcomes) {
        // Rescheduled tasks ran elsewhere than the table planned; score
        // only placements that stuck (the prediction being evaluated is
        // the one the scheduler actually made for this host).
        auto assignment = table_result->find(outcome.task);
        if (!assignment || assignment->primary_host() != outcome.host) {
          continue;
        }
        double actual = outcome.finished - outcome.started;
        // The scheduler's prediction at assignment time (calibrated path
        // once history exists).
        double calibrated = assignment->predicted_time;
        calibrated_err.add(std::fabs(calibrated - actual) / actual);
        // The pure analytic prediction for the same placement.
        common::SiteId host_site = env.topology().host(outcome.host).site;
        auto rec = env.repo(host_site).resources().find(outcome.host);
        auto perf = sched::resolve_perf(graph.task(outcome.task),
                                        env.repo(session.site).tasks());
        if (!rec || !perf) continue;
        auto analytic =
            env.core().predictor().predict(*perf, *rec, nullptr);
        if (analytic) {
          analytic_err.add(std::fabs(*analytic - actual) / actual);
        }
      }
      for (const net::Host& h : env.topology().hosts()) {
        load_sum += h.state.cpu_load;
        ++runs;
      }
    }

    double improvement = analytic_err.mean() > 0
                             ? analytic_err.mean() / calibrated_err.mean()
                             : 0.0;
    table.add_row({bench::Table::num(volatility, 2),
                   bench::Table::num(load_sum / runs, 2),
                   bench::Table::num(analytic_err.mean(), 3),
                   bench::Table::num(calibrated_err.mean(), 3),
                   bench::Table::num(improvement, 2) + "x"});
  }
  table.print();

  bench::print_note(
      "\nExpected shape: analytic error grows with volatility (the db\n"
      "snapshot goes stale between monitor reports); measured-history\n"
      "calibration helps increasingly with volatility, because measured\n"
      "means average over load conditions instead of chasing snapshots.");
  return 0;
}
