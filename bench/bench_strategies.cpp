// E-strategies — the scheduler-strategy plane: a strategy × staleness ×
// workload sensitivity grid over the live simulated runtime.
//
// Every strategy registered with vdce::sched (docs/SCHEDULING.md) runs the
// same workload corpus end-to-end — submission, Fig. 2 bid gathering,
// placement, simulated execution — under three monitoring-staleness
// settings:
//
//   fresh      monitor_period = 1 s, no stale penalty (repository data is
//              current; the strategies compete on placement quality alone)
//   stale-30   monitor_period = 30 s, stale_after = 60 s (bids are priced
//              on sample data up to 30 s old; the availability-aware
//              objective starts discounting muted hosts)
//   stale-120  monitor_period = 120 s, stale_after = 240 s (the monitor is
//              effectively decoupled from the background-load process)
//
// Background load is on so staleness matters: the ground truth drifts
// between monitor samples and a strategy that chases old data pays for it
// in makespan.  Per cell the bench records the mean makespan and the summed
// critical-path phase decomposition (startup/compute/transfer/wait/
// recovery/completion, obs::causal) so a regression is attributable to a
// phase, not just a number.  Emits JSON on stdout and to
// BENCH_STRATEGIES.json for CI artifact upload.
//
// Flags:
//   --smoke   fewer/smaller workloads (CI per-commit signal)
//   --check   exit non-zero unless every run succeeded, at least eight
//             strategies were measured, and every run's critical path tiled
//             its makespan
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "obs/causal.hpp"
#include "scale/generate.hpp"
#include "sched/strategy.hpp"
#include "vdce/environment.hpp"

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

struct StalenessSetting {
  const char* label;
  common::SimDuration monitor_period;
  common::SimDuration stale_after;  ///< 0 disables the scheduling penalty
};

struct WorkloadCase {
  std::size_t tasks;
  std::size_t width;
  std::uint64_t seed;
};

struct Cell {
  std::size_t cases = 0;
  std::size_t successes = 0;
  double makespan_sum = 0.0;
  double scheduling_sum = 0.0;
  obs::causal::PhaseTotals phases;  ///< summed across the cell's runs
  bool tiled = true;                ///< phases.total() == makespan, per run
};

afg::Afg make_case(const WorkloadCase& wc) {
  scale::WorkloadSpec w;
  w.shape = scale::WorkloadShape::kLayered;
  w.tasks = wc.tasks;
  w.width = wc.width;
  w.edge_density = 0.4;
  w.seed = wc.seed;
  return scale::make_workload(w, "strategy-grid");
}

Cell run_cell(const std::string& strategy, const StalenessSetting& stale,
              const std::vector<WorkloadCase>& cases) {
  Cell cell;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    // A fresh environment per run: every (strategy, staleness, case) cell
    // sees the same topology seed, arrival state, and background-load
    // process, so cells differ only in the axis under study.
    EnvironmentOptions options;
    options.background_load = true;
    options.runtime.monitor_period = stale.monitor_period;
    options.runtime.exec_noise_cv = 0.0;  // deterministic, comparable cells
    scale::GridSpec g;
    g.sites = 4;
    g.hosts_per_site = 6;
    g.seed = 33 + i;
    VdceEnvironment env(scale::make_grid(g), options);
    if (!env.try_bring_up().ok()) return cell;
    env.add_user("bench", "bench");
    auto session = env.login(common::SiteId(0), "bench", "bench");
    if (!session) return cell;

    RunOptions run;
    run.real_kernels = false;
    run.sched.strategy = strategy;
    run.sched.stale_after = stale.stale_after;
    auto report = env.run_application(make_case(cases[i]), *session, run);
    ++cell.cases;
    if (!report || !report->success) {
      std::fprintf(stderr, "run failed: strategy=%s staleness=%s case=%zu%s\n",
                   strategy.c_str(), stale.label, i,
                   report ? "" : (": " + report.error().to_string()).c_str());
      continue;
    }
    ++cell.successes;
    cell.makespan_sum += report->makespan();
    cell.scheduling_sum += report->scheduling_time;
    const obs::causal::CriticalPath cp = report->critical_path();
    if (std::abs(cp.phases.total() - report->makespan()) > 1e-6) {
      cell.tiled = false;
    }
    cell.phases.startup += cp.phases.startup;
    cell.phases.compute += cp.phases.compute;
    cell.phases.transfer += cp.phases.transfer;
    cell.phases.wait += cp.phases.wait;
    cell.phases.recovery += cp.phases.recovery;
    cell.phases.completion += cp.phases.completion;
  }
  return cell;
}

std::string phases_json(const obs::causal::PhaseTotals& p) {
  return "{\"startup\":" + json_num(p.startup) +
         ",\"compute\":" + json_num(p.compute) +
         ",\"transfer\":" + json_num(p.transfer) +
         ",\"wait\":" + json_num(p.wait) +
         ",\"recovery\":" + json_num(p.recovery) +
         ",\"completion\":" + json_num(p.completion) +
         ",\"total\":" + json_num(p.total()) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E-strategies",
                     "strategy x staleness sensitivity grid (live runtime)");
  bench::print_note(smoke ? "mode: smoke (2 workloads per cell)"
                          : "mode: full (4 workloads per cell)");

  const std::vector<StalenessSetting> staleness = {
      {"fresh", 1.0, 0.0},
      {"stale-30", 30.0, 60.0},
      {"stale-120", 120.0, 240.0},
  };
  const std::vector<WorkloadCase> cases =
      smoke ? std::vector<WorkloadCase>{{16, 4, 1201}, {24, 6, 1202}}
            : std::vector<WorkloadCase>{
                  {16, 4, 1201}, {24, 6, 1202}, {40, 8, 1203}, {64, 8, 1204}};

  const std::vector<sched::StrategyInfo> strategies = sched::strategies();

  bool all_success = true;
  bool all_tiled = true;
  std::string json = "{\"bench\":\"strategies\",\"mode\":\"";
  json += smoke ? "smoke" : "full";
  json += "\",\"strategy_count\":" + std::to_string(strategies.size());
  json += ",\"staleness_settings\":[";
  for (std::size_t i = 0; i < staleness.size(); ++i) {
    if (i) json += ",";
    json += "{\"label\":\"" + std::string(staleness[i].label) +
            "\",\"monitor_period_s\":" + json_num(staleness[i].monitor_period) +
            ",\"stale_after_s\":" + json_num(staleness[i].stale_after) + "}";
  }
  json += "],\"grid\":[";

  bench::Table table({"strategy", "staleness", "ok", "mean_makespan_s",
                      "mean_sched_s", "cp_compute_s", "cp_transfer_s",
                      "cp_wait_s"});
  bool first = true;
  for (const sched::StrategyInfo& info : strategies) {
    for (const StalenessSetting& stale : staleness) {
      const Cell cell = run_cell(info.name, stale, cases);
      const bool ok = cell.successes == cases.size() && cell.cases == cases.size();
      all_success = all_success && ok;
      all_tiled = all_tiled && cell.tiled;
      const double n = cell.successes ? double(cell.successes) : 1.0;
      table.add_row({info.name, stale.label,
                     ok ? std::to_string(cell.successes) + "/" +
                              std::to_string(cases.size())
                        : "FAIL",
                     bench::Table::num(cell.makespan_sum / n),
                     bench::Table::num(cell.scheduling_sum / n),
                     bench::Table::num(cell.phases.compute / n),
                     bench::Table::num(cell.phases.transfer / n),
                     bench::Table::num(cell.phases.wait / n)});
      if (!first) json += ",";
      first = false;
      json += "{\"strategy\":\"" + info.name + "\",\"staleness\":\"" +
              stale.label + "\",\"cases\":" + std::to_string(cell.cases) +
              ",\"successes\":" + std::to_string(cell.successes) +
              ",\"mean_makespan_s\":" + json_num(cell.makespan_sum / n) +
              ",\"mean_scheduling_s\":" + json_num(cell.scheduling_sum / n) +
              ",\"critical_path_phases\":" + phases_json(cell.phases) +
              ",\"tiled\":" + (cell.tiled ? "true" : "false") + "}";
    }
  }
  json += "],\"all_success\":";
  json += all_success ? "true" : "false";
  json += ",\"all_tiled\":";
  json += all_tiled ? "true" : "false";
  json += "}";
  table.print();

  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_STRATEGIES.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (strategies.size() < 8) {
      std::fprintf(stderr, "CHECK FAILED: only %zu strategies registered\n",
                   strategies.size());
      return 1;
    }
    if (!all_success) {
      std::fprintf(stderr, "CHECK FAILED: at least one grid run failed\n");
      return 1;
    }
    if (!all_tiled) {
      std::fprintf(stderr,
                   "CHECK FAILED: a critical path did not tile its makespan\n");
      return 1;
    }
    std::printf("check: ok (%zu strategies x %zu staleness settings, all "
                "runs succeeded)\n",
                strategies.size(), staleness.size());
  }
  return 0;
}
