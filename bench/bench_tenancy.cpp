// E12 — multi-tenant concurrency plane: submission throughput and
// submit->complete latency vs. tenant count (docs/TENANCY.md).
//
// For each tenant count the bench brings up a generated grid, creates one
// account per tenant, replays the deterministic arrival sequence from
// scale::make_tenant_arrivals (staggered submissions with think-time gaps)
// through the asynchronous API — run_for() to each arrival instant, then
// submit_application() — and drains the fleet.  Reported per configuration:
//
//   * completed / deferred counts and the admission peaks;
//   * p50 / p99 submit->complete latency (report.completed - report.enqueued,
//     which includes admission wait, scheduling, setup, and execution);
//   * throughput in applications per simulated minute over the span from
//     the first submission to the drain instant;
//   * a co-scheduling audit: per-host busy intervals from every report,
//     checked pairwise across applications — overlap means two apps
//     double-booked a machine, which the reservation table must prevent.
//
// Emits a JSON object on stdout and writes it to BENCH_TENANCY.json for CI
// artifact upload.
//
// Flags:
//   --smoke   fewer/smaller configurations (CI per-commit signal)
//   --check   exit non-zero unless every submission completed successfully,
//             no host was ever double-booked across applications, and the
//             reservation table counted zero acquire conflicts
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "scale/generate.hpp"
#include "vdce/environment.hpp"

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One application's busy claim on one host, for the double-booking audit.
struct HostClaim {
  std::uint32_t host = 0;
  std::uint64_t app = 0;
  double start = 0.0;
  double end = 0.0;
};

/// True when any two claims on the same host from different applications
/// overlap in time (open interval — shared endpoints are fine).
bool find_double_booking(std::vector<HostClaim>& claims, std::string* who) {
  std::sort(claims.begin(), claims.end(),
            [](const HostClaim& a, const HostClaim& b) {
              if (a.host != b.host) return a.host < b.host;
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < claims.size(); ++i) {
    const HostClaim& prev = claims[i - 1];
    const HostClaim& cur = claims[i];
    if (cur.host == prev.host && cur.app != prev.app &&
        cur.start < prev.end) {
      *who = "host " + std::to_string(cur.host) + ": apps " +
             std::to_string(prev.app) + " and " + std::to_string(cur.app) +
             " overlap at " + json_num(cur.start) + "s";
      return true;
    }
  }
  return false;
}

struct Measurement {
  std::size_t tenants = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t deferred = 0;
  std::size_t peak_in_flight = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double contention_max = 0.0;  ///< largest admission wait observed
  double throughput = 0.0;      ///< apps per simulated minute
  double span = 0.0;            ///< first submission -> drained
  double wall_ms = 0.0;
  bool all_success = false;
  bool no_double_booking = false;
  std::uint64_t reservation_conflicts = 0;
};

Measurement measure(std::size_t tenants, std::size_t apps_per_tenant,
                    bool smoke) {
  Measurement m;
  m.tenants = tenants;
  const double t0 = now_ms();

  ScaleSpec spec;
  spec.grid.sites = smoke ? 2 : 3;
  spec.grid.hosts_per_site = smoke ? 6 : 10;
  spec.grid.seed = 41;
  spec.options.runtime.exec_noise_cv = 0.0;
  auto env = VdceEnvironment::make_scale_environment(spec);
  if (!env) {
    std::fprintf(stderr, "bring-up failed: %s\n",
                 env.error().to_string().c_str());
    return m;
  }

  scale::TenantSpec ts;
  ts.tenants = tenants;
  ts.apps_per_tenant = apps_per_tenant;
  ts.seed = 7;
  const std::vector<scale::TenantArrival> arrivals =
      scale::make_tenant_arrivals(ts);

  // One account and session per tenant (the arrival's priority is the
  // account priority, exercised by QueuePolicy::kPriority elsewhere).
  std::vector<Session> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    const std::string user = "tenant" + std::to_string(t);
    int priority = 1;
    for (const scale::TenantArrival& a : arrivals) {
      if (a.tenant == t) { priority = a.priority; break; }
    }
    auto added = (*env)->try_add_user(user, "pw", priority);
    if (!added.ok()) {
      std::fprintf(stderr, "add_user failed: %s\n",
                   added.error().to_string().c_str());
      return m;
    }
    auto session = (*env)->login(common::SiteId(0), user, "pw");
    if (!session) {
      std::fprintf(stderr, "login failed: %s\n",
                   session.error().to_string().c_str());
      return m;
    }
    sessions.push_back(*session);
  }

  // Replay the arrival schedule against the asynchronous API.
  std::vector<AppHandle> handles;
  double first_submit = -1.0;
  for (const scale::TenantArrival& a : arrivals) {
    if (a.at > (*env)->now()) (*env)->run_for(a.at - (*env)->now());
    afg::Afg graph = scale::make_workload(a.workload, a.app_name);
    RunOptions run;
    run.real_kernels = false;
    auto handle =
        (*env)->submit_application(graph, sessions[a.tenant], run);
    ++m.submitted;
    if (!handle) {
      std::fprintf(stderr, "submit %s rejected: %s\n", a.app_name.c_str(),
                   handle.error().to_string().c_str());
      continue;
    }
    if (first_submit < 0.0) first_submit = (*env)->now();
    handles.push_back(*handle);
  }

  auto drained = (*env)->drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 drained.error().to_string().c_str());
    return m;
  }

  std::vector<double> latencies;
  std::vector<HostClaim> claims;
  bool all_success = !handles.empty();
  for (AppHandle h : handles) {
    auto report = (*env)->report(h);
    if (!report || !report->success) {
      all_success = false;
      continue;
    }
    ++m.completed;
    latencies.push_back(report->completed - report->enqueued);
    m.contention_max =
        std::max(m.contention_max, report->admitted - report->enqueued);
    for (const runtime::TaskOutcome& o : report->outcomes) {
      claims.push_back(HostClaim{o.host.value(), h.id, o.started, o.finished});
    }
  }
  m.all_success = all_success;

  std::string violation;
  m.no_double_booking = !find_double_booking(claims, &violation);
  if (!m.no_double_booking) {
    std::fprintf(stderr, "DOUBLE BOOKING: %s\n", violation.c_str());
  }
  m.reservation_conflicts = (*env)->core().reservations().conflicts();

  const tenancy::TenancyStats& stats = (*env)->tenancy_stats();
  m.deferred = stats.deferred;
  m.peak_in_flight = stats.peak_in_flight;

  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) {
    if (latencies.empty()) return 0.0;
    const double pos = q * static_cast<double>(latencies.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return latencies[lo] * (1.0 - frac) + latencies[hi] * frac;
  };
  m.p50 = quantile(0.50);
  m.p99 = quantile(0.99);

  m.span = first_submit >= 0.0 ? (*env)->now() - first_submit : 0.0;
  if (m.span > 0.0) {
    m.throughput = static_cast<double>(m.completed) * 60.0 / m.span;
  }
  m.wall_ms = now_ms() - t0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E12", "multi-tenant throughput and latency vs. tenants");
  bench::print_note(
      "Staggered arrival sequences replayed through submit/drain; latency is\n"
      "submit->complete (admission wait included).  The audit column proves\n"
      "no host was ever shared by two applications at the same instant.");

  const std::vector<std::size_t> tenant_counts =
      smoke ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t apps_per_tenant = smoke ? 2 : 3;

  bench::Table table({"tenants", "apps", "completed", "deferred", "peak",
                      "p50_s", "p99_s", "apps/min", "max_wait_s", "wall_ms",
                      "audit"});
  std::string json = "{\"bench\":\"tenancy\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"apps_per_tenant\":" + std::to_string(apps_per_tenant);
  json += ",\"configs\":[";

  bool all_success = true;
  bool no_double_booking = true;
  std::uint64_t conflicts = 0;
  bool first = true;
  for (std::size_t tenants : tenant_counts) {
    Measurement m = measure(tenants, apps_per_tenant, smoke);
    all_success = all_success && m.all_success;
    no_double_booking = no_double_booking && m.no_double_booking;
    conflicts += m.reservation_conflicts;
    table.add_row({std::to_string(m.tenants), std::to_string(m.submitted),
                   std::to_string(m.completed), std::to_string(m.deferred),
                   std::to_string(m.peak_in_flight), bench::Table::num(m.p50),
                   bench::Table::num(m.p99),
                   bench::Table::num(m.throughput, 2),
                   bench::Table::num(m.contention_max),
                   bench::Table::num(m.wall_ms, 1),
                   m.no_double_booking ? "exclusive" : "DOUBLE-BOOKED"});
    if (!first) json += ",";
    first = false;
    json += "{\"tenants\":" + std::to_string(m.tenants) +
            ",\"submitted\":" + std::to_string(m.submitted) +
            ",\"completed\":" + std::to_string(m.completed) +
            ",\"deferred\":" + std::to_string(m.deferred) +
            ",\"peak_in_flight\":" + std::to_string(m.peak_in_flight) +
            ",\"p50_s\":" + json_num(m.p50) +
            ",\"p99_s\":" + json_num(m.p99) +
            ",\"apps_per_min\":" + json_num(m.throughput) +
            ",\"max_admission_wait_s\":" + json_num(m.contention_max) +
            ",\"span_s\":" + json_num(m.span) +
            ",\"wall_ms\":" + json_num(m.wall_ms) +
            ",\"all_success\":" + (m.all_success ? "true" : "false") +
            ",\"no_double_booking\":" +
            (m.no_double_booking ? "true" : "false") +
            ",\"reservation_conflicts\":" +
            std::to_string(m.reservation_conflicts) + "}";
  }
  json += "],\"all_success\":";
  json += all_success ? "true" : "false";
  json += ",\"no_double_booking\":";
  json += no_double_booking ? "true" : "false";
  json += ",\"reservation_conflicts\":" + std::to_string(conflicts);
  json += "}";

  table.print();
  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_TENANCY.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (!all_success) {
      std::fprintf(stderr,
                   "CHECK FAILED: a submission was rejected or failed\n");
      return 1;
    }
    if (!no_double_booking) {
      std::fprintf(stderr,
                   "CHECK FAILED: a host was double-booked across "
                   "applications\n");
      return 1;
    }
    if (conflicts != 0) {
      std::fprintf(stderr,
                   "CHECK FAILED: reservation table counted %llu acquire "
                   "conflicts\n",
                   static_cast<unsigned long long>(conflicts));
      return 1;
    }
    std::printf(
        "check: ok (every submission completed, hosts exclusive, 0 "
        "reservation conflicts)\n");
  }
  return 0;
}
