// E-scale — scale plane: scheduling time and makespan vs. grid size and
// AFG width, optimized scheduler vs. the retained naive reference.
//
// Two sweeps, both over generated vdce::scale inputs:
//
//   * grid sweep — S×H grows from 2×4 to 32×32 with a fixed 256-task
//     layered AFG; every candidate site participates (k_nearest = S-1);
//   * AFG sweep — a fixed 8×16 grid with workloads from 64 to 512 tasks
//     (bounded-fan-in random DAGs) and layer widths from 4 to 32.
//
// Each configuration times sched::reference::schedule_naive (the frozen
// pre-optimization algorithm) against VdceSiteScheduler::schedule and
// verifies the two allocation tables are bit-identical — the speedup is
// only real if the caches change nothing.  Emits a JSON object on stdout
// and writes it to BENCH_SCALE.json for CI artifact upload.
//
// Flags:
//   --smoke   small configurations (CI per-commit signal)
//   --check   exit non-zero unless every table pair is identical and the
//             largest grid configuration's speedup meets the documented
//             threshold (3x full, 2x smoke — see docs/SCALING.md)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "db/site_repository.hpp"
#include "predict/model.hpp"
#include "scale/generate.hpp"
#include "sched/reference.hpp"
#include "sched/site_scheduler.hpp"

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

/// A topology with its per-site repositories and a ready SchedulerContext.
struct Deployment {
  explicit Deployment(scale::GridSpec spec)
      : topology(scale::make_grid(spec)) {
    for (const net::Site& site : topology.sites()) {
      auto repo = std::make_unique<db::SiteRepository>(site.id);
      repo->register_site_hosts(topology);
      repos.push_back(std::move(repo));
    }
    context.topology = &topology;
    for (auto& r : repos) context.repos.push_back(r.get());
    context.predictor = &predictor;
    context.local_site = common::SiteId(0);
    context.k_nearest = topology.site_count() - 1;  // every site bids
  }

  net::Topology topology;
  std::vector<std::unique_ptr<db::SiteRepository>> repos;
  predict::Predictor predictor;
  sched::SchedulerContext context;
};

bool tables_identical(const sched::ResourceAllocationTable& a,
                      const sched::ResourceAllocationTable& b) {
  if (a.assignments.size() != b.assignments.size()) return false;
  if (a.schedule_length != b.schedule_length) return false;
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    const sched::Assignment& x = a.assignments[i];
    const sched::Assignment& y = b.assignments[i];
    if (x.task != y.task || x.site != y.site || x.hosts != y.hosts ||
        x.predicted_time != y.predicted_time || x.est_start != y.est_start ||
        x.est_finish != y.est_finish) {
      return false;
    }
  }
  return true;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  double naive_ms = 0.0;
  double opt_ms = 0.0;
  double speedup = 0.0;
  double makespan = 0.0;
  bool identical = false;
};

Measurement measure(Deployment& dep, const afg::Afg& graph, int opt_repeats) {
  Measurement m;
  sched::SchedulingPolicy options;  // availability-aware, paper levels
  sched::VdceSiteScheduler scheduler(options);

  double t0 = now_ms();
  auto naive = sched::reference::schedule_naive(graph, dep.context, options);
  m.naive_ms = now_ms() - t0;
  if (!naive) {
    std::fprintf(stderr, "naive schedule failed: %s\n",
                 naive.error().to_string().c_str());
    return m;
  }

  common::Expected<sched::ResourceAllocationTable> optimized =
      common::Error{common::ErrorCode::kInternal, "unset"};
  t0 = now_ms();
  for (int r = 0; r < opt_repeats; ++r) {
    optimized = scheduler.schedule(graph, dep.context);
  }
  m.opt_ms = (now_ms() - t0) / opt_repeats;
  if (!optimized) {
    std::fprintf(stderr, "optimized schedule failed: %s\n",
                 optimized.error().to_string().c_str());
    return m;
  }

  m.identical = tables_identical(*naive, *optimized) &&
                naive->scheduler_name == optimized->scheduler_name + "-naive";
  m.speedup = m.opt_ms > 0.0 ? m.naive_ms / m.opt_ms : 0.0;
  m.makespan = optimized->schedule_length;
  return m;
}

struct GridConfig {
  std::size_t sites;
  std::size_t hosts;
  std::size_t tasks;
};

afg::Afg layered_workload(std::size_t tasks, std::size_t width,
                          std::uint64_t seed) {
  scale::WorkloadSpec w;
  w.shape = scale::WorkloadShape::kLayered;
  w.tasks = tasks;
  w.width = width;
  w.edge_density = 0.35;
  w.seed = seed;
  return scale::make_workload(w, "grid-sweep");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E-scale", "scheduler scaling: optimized vs naive reference");
  bench::print_note(smoke ? "mode: smoke (small grids; CI signal)"
                          : "mode: full (largest grid 32x32, 512-task AFG)");

  const std::vector<GridConfig> grid_configs =
      smoke ? std::vector<GridConfig>{{2, 4, 48}, {4, 8, 96}, {8, 16, 128}}
            : std::vector<GridConfig>{{2, 4, 256},
                                      {4, 8, 256},
                                      {8, 16, 256},
                                      {16, 32, 256},
                                      {32, 32, 256}};
  const std::vector<std::size_t> afg_tasks =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{64, 128, 256, 512};
  const std::vector<std::size_t> afg_widths =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{4, 8, 16, 32};
  const double threshold = smoke ? 2.0 : 3.0;
  const int opt_repeats = smoke ? 3 : 5;

  bool all_identical = true;
  std::string json = "{\"bench\":\"scale\",\"mode\":\"";
  json += smoke ? "smoke" : "full";
  json += "\",\"threshold_speedup\":" + json_num(threshold);

  // --- grid sweep ---------------------------------------------------------
  bench::Table grid_table(
      {"sites", "hosts/site", "tasks", "naive_ms", "opt_ms", "speedup",
       "makespan_s", "identical"});
  json += ",\"grid_sweep\":[";
  double largest_speedup = 0.0;
  for (std::size_t i = 0; i < grid_configs.size(); ++i) {
    const GridConfig& cfg = grid_configs[i];
    scale::GridSpec g;
    g.sites = cfg.sites;
    g.hosts_per_site = cfg.hosts;
    g.seed = 11 + i;
    Deployment dep(g);
    afg::Afg graph = layered_workload(cfg.tasks, 16, 101 + i);
    Measurement m = measure(dep, graph, opt_repeats);
    all_identical = all_identical && m.identical;
    largest_speedup = m.speedup;  // configs grow; last one is largest
    grid_table.add_row({std::to_string(cfg.sites), std::to_string(cfg.hosts),
                        std::to_string(cfg.tasks), bench::Table::num(m.naive_ms),
                        bench::Table::num(m.opt_ms),
                        bench::Table::num(m.speedup, 1),
                        bench::Table::num(m.makespan),
                        m.identical ? "yes" : "NO"});
    if (i) json += ",";
    json += "{\"sites\":" + std::to_string(cfg.sites) +
            ",\"hosts_per_site\":" + std::to_string(cfg.hosts) +
            ",\"tasks\":" + std::to_string(cfg.tasks) +
            ",\"naive_ms\":" + json_num(m.naive_ms) +
            ",\"opt_ms\":" + json_num(m.opt_ms) +
            ",\"speedup\":" + json_num(m.speedup) +
            ",\"makespan_s\":" + json_num(m.makespan) +
            ",\"identical\":" + (m.identical ? "true" : "false") + "}";
  }
  json += "]";
  grid_table.print();

  // --- AFG sweep ----------------------------------------------------------
  bench::Table afg_table({"shape", "tasks", "width", "naive_ms", "opt_ms",
                          "speedup", "makespan_s", "identical"});
  json += ",\"afg_sweep\":[";
  bool first = true;
  {
    scale::GridSpec g;
    g.sites = 8;
    g.hosts_per_site = 16;
    g.seed = 77;
    Deployment dep(g);
    for (std::size_t tasks : afg_tasks) {
      scale::WorkloadSpec w;
      w.shape = scale::WorkloadShape::kRandomDag;
      w.tasks = tasks;
      w.max_fan_in = 6;
      w.seed = 500 + tasks;
      afg::Afg graph = scale::make_workload(w, "afg-sweep");
      Measurement m = measure(dep, graph, opt_repeats);
      all_identical = all_identical && m.identical;
      afg_table.add_row({"randomdag", std::to_string(tasks), "-",
                         bench::Table::num(m.naive_ms),
                         bench::Table::num(m.opt_ms),
                         bench::Table::num(m.speedup, 1),
                         bench::Table::num(m.makespan),
                         m.identical ? "yes" : "NO"});
      if (!first) json += ",";
      first = false;
      json += "{\"shape\":\"randomdag\",\"tasks\":" + std::to_string(tasks) +
              ",\"naive_ms\":" + json_num(m.naive_ms) +
              ",\"opt_ms\":" + json_num(m.opt_ms) +
              ",\"speedup\":" + json_num(m.speedup) +
              ",\"makespan_s\":" + json_num(m.makespan) +
              ",\"identical\":" + (m.identical ? "true" : "false") + "}";
    }
    const std::size_t width_tasks = smoke ? 64 : 256;
    for (std::size_t width : afg_widths) {
      afg::Afg graph = layered_workload(width_tasks, width, 900 + width);
      Measurement m = measure(dep, graph, opt_repeats);
      all_identical = all_identical && m.identical;
      afg_table.add_row({"layered", std::to_string(width_tasks),
                         std::to_string(width), bench::Table::num(m.naive_ms),
                         bench::Table::num(m.opt_ms),
                         bench::Table::num(m.speedup, 1),
                         bench::Table::num(m.makespan),
                         m.identical ? "yes" : "NO"});
      json += ",{\"shape\":\"layered\",\"tasks\":" +
              std::to_string(width_tasks) +
              ",\"width\":" + std::to_string(width) +
              ",\"naive_ms\":" + json_num(m.naive_ms) +
              ",\"opt_ms\":" + json_num(m.opt_ms) +
              ",\"speedup\":" + json_num(m.speedup) +
              ",\"makespan_s\":" + json_num(m.makespan) +
              ",\"identical\":" + (m.identical ? "true" : "false") + "}";
    }
  }
  json += "]";

  json += ",\"largest_grid_speedup\":" + json_num(largest_speedup);
  json += ",\"all_identical\":";
  json += all_identical ? "true" : "false";
  json += "}";
  afg_table.print();

  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_SCALE.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (!all_identical) {
      std::fprintf(stderr,
                   "CHECK FAILED: optimized schedule diverged from the naive "
                   "reference\n");
      return 1;
    }
    if (largest_speedup < threshold) {
      std::fprintf(stderr,
                   "CHECK FAILED: largest-grid speedup %.2fx below the %.1fx "
                   "threshold (see docs/SCALING.md)\n",
                   largest_speedup, threshold);
      return 1;
    }
    std::printf("check: ok (speedup %.1fx >= %.1fx, schedules identical)\n",
                largest_speedup, threshold);
  }
  return 0;
}
