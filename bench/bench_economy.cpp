// E16 — deadline/budget tightness sweep (docs/ECONOMY.md): completion,
// admission, and spend vs. constraint tightness over Nimrod/G-style
// parameter-sweep workloads.
//
// Phase 1 probes every application unconstrained (a budget no schedule can
// exhaust) to learn its baseline quote S0 and makespan M0.  Phase 2 replays
// the fleet under each tightness factor f:
//
//   * budget mode (dbc-time):   budget = f * S0, no deadline.  Tight
//     budgets are rejected up front with the typed kBudgetExceeded error;
//     loose budgets must always admit, and every admitted run's quoted
//     spend must respect its budget.
//   * deadline mode (dbc-cost): deadline = f * M0, budget loose (4 * S0).
//     Runs always complete (the deadline stays advisory here); the
//     deadline-met rate rises with f while dbc-cost trades the slack for
//     cheaper placements.
//
// Emits a JSON object on stdout and writes BENCH_ECONOMY.json for CI
// artifact upload.
//
// Flags:
//   --smoke   fewer/smaller configurations (CI per-commit signal)
//   --check   exit non-zero unless no admitted run overspends its budget,
//             loose constraints (f >= 1.25) are never rejected as
//             unaffordable, every admitted run completes, and the flagship
//             configuration replays byte-identically
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scale/generate.hpp"
#include "vdce/environment.hpp"

namespace {

using namespace vdce;

std::string json_num(double v) { return vdce::bench::json_num(v); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The fleet: parameter-sweep applications of growing width.
std::vector<afg::Afg> fleet(bool smoke) {
  const std::size_t apps = smoke ? 4 : 8;
  std::vector<afg::Afg> graphs;
  for (std::size_t i = 0; i < apps; ++i) {
    scale::WorkloadSpec spec;
    spec.shape = scale::WorkloadShape::kParamSweep;
    spec.tasks = 8 + 2 * i;  // root + sweeps + gather
    spec.seed = 100 + i;
    graphs.push_back(scale::make_workload(spec, "sweep" + std::to_string(i)));
  }
  return graphs;
}

common::Expected<std::unique_ptr<VdceEnvironment>> bring_up(bool smoke,
                                                            bool want_trace) {
  ScaleSpec spec;
  spec.grid.sites = smoke ? 2 : 3;
  spec.grid.hosts_per_site = smoke ? 6 : 8;
  spec.grid.seed = 41;
  spec.options.runtime.exec_noise_cv = 0.0;
  spec.options.trace.enabled = want_trace;
  return VdceEnvironment::make_scale_environment(spec);
}

Session admin_login(VdceEnvironment& env) {
  ScaleSpec spec;
  return env.login(common::SiteId(0), spec.admin_user, spec.admin_password)
      .value();
}

/// Per-application unconstrained baseline: quoted spend and makespan.
struct Baseline {
  double spend = 0.0;
  double makespan = 0.0;
};

std::vector<Baseline> probe_baselines(const std::vector<afg::Afg>& graphs,
                                      bool smoke) {
  std::vector<Baseline> baselines;
  auto env = bring_up(smoke, /*want_trace=*/false);
  if (!env) {
    std::fprintf(stderr, "bring-up failed: %s\n",
                 env.error().to_string().c_str());
    return baselines;
  }
  auto session = admin_login(**env);
  for (const afg::Afg& graph : graphs) {
    RunOptions run;
    run.real_kernels = false;
    run.budget = 1e18;  // unconstrained, but forces the quote into the report
    auto report = (*env)->run_application(graph, session, run);
    Baseline b;
    if (report && report->success) {
      b.spend = report->spend();
      b.makespan = report->makespan();
    } else {
      std::fprintf(stderr, "baseline run failed for %s\n",
                   graph.name().c_str());
    }
    baselines.push_back(b);
  }
  return baselines;
}

struct Measurement {
  std::string mode;  ///< "budget" or "deadline"
  double factor = 0.0;
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t budget_rejections = 0;
  std::size_t deadline_met = 0;
  double spend_total = 0.0;
  double overspend_max = 0.0;  ///< max(spend - budget) over admitted runs
  double wall_ms = 0.0;
  std::string trace_jsonl;  ///< only when `want_trace`
};

Measurement measure(const std::string& mode, double factor,
                    const std::vector<afg::Afg>& graphs,
                    const std::vector<Baseline>& baselines, bool smoke,
                    bool want_trace) {
  Measurement m;
  m.mode = mode;
  m.factor = factor;
  const double t0 = now_ms();
  auto env = bring_up(smoke, want_trace);
  if (!env) {
    std::fprintf(stderr, "bring-up failed: %s\n",
                 env.error().to_string().c_str());
    return m;
  }
  auto session = admin_login(**env);
  std::string narratives;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    RunOptions run;
    run.real_kernels = false;
    if (mode == "budget") {
      run.sched.strategy = "dbc-time";
      run.budget = baselines[i].spend * factor;
    } else {
      run.sched.strategy = "dbc-cost";
      run.deadline = baselines[i].makespan * factor;
      run.budget = baselines[i].spend * 4.0;  // loose: spend stays quoted
    }
    ++m.submitted;
    auto report = (*env)->run_application(graphs[i], session, run);
    if (!report) {
      if (report.error().code == common::ErrorCode::kBudgetExceeded) {
        ++m.budget_rejections;
      } else {
        std::fprintf(stderr, "unexpected rejection: %s\n",
                     report.error().to_string().c_str());
      }
      continue;
    }
    ++m.admitted;
    if (report->success) ++m.completed;
    if (report->deadline_met()) ++m.deadline_met;
    m.spend_total += report->spend();
    m.overspend_max =
        std::max(m.overspend_max, report->spend() - report->budget);
    narratives += report->describe(graphs[i]);
  }
  if (want_trace) m.trace_jsonl = (*env)->trace().to_jsonl() + narratives;
  m.wall_ms = now_ms() - t0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  bench::print_title("E16",
                     "economy plane: completion and spend vs. deadline/budget "
                     "tightness");
  bench::print_note(
      "Each application is probed unconstrained for its baseline quote S0 and\n"
      "makespan M0, then replayed under budget = f*S0 (dbc-time) and\n"
      "deadline = f*M0 (dbc-cost).  Tight budgets reject up front with the\n"
      "typed kBudgetExceeded error; admitted runs must never overspend.");

  const std::vector<afg::Afg> graphs = fleet(smoke);
  const std::vector<Baseline> baselines = probe_baselines(graphs, smoke);
  if (baselines.size() != graphs.size()) {
    std::fprintf(stderr, "baseline probe failed\n");
    return 1;
  }

  const std::vector<double> factors =
      smoke ? std::vector<double>{0.3, 1.0, 1.25}
            : std::vector<double>{0.3, 0.6, 1.0, 1.25, 2.0};

  bench::Table table({"mode", "factor", "admitted", "completed", "rejected",
                      "deadline_met", "spend_G$", "overspend", "wall_ms"});
  std::string json = "{\"bench\":\"economy\",\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",\"baselines\":[";
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"app\":\"" + graphs[i].name() + "\",\"spend\":" +
            json_num(baselines[i].spend) + ",\"makespan\":" +
            json_num(baselines[i].makespan) + "}";
  }
  json += "],\"configs\":[";

  bool within_budget = true;        // admitted => spend <= budget
  bool loose_never_rejected = true; // f >= 1.25 => zero budget rejections
  bool admitted_complete = true;    // admitted => success
  bool first = true;
  for (const std::string mode : {"budget", "deadline"}) {
    for (double factor : factors) {
      Measurement m = measure(mode, factor, graphs, baselines, smoke,
                              /*want_trace=*/false);
      within_budget = within_budget && m.overspend_max <= 0.0;
      admitted_complete = admitted_complete && m.completed == m.admitted;
      // Deadline mode's budget is always loose (4x), so any rejection there
      // is a violation; in budget mode only f >= 1.25 counts as loose.
      if ((mode == "deadline" || factor >= 1.25) && m.budget_rejections > 0) {
        loose_never_rejected = false;
        std::fprintf(stderr,
                     "AFFORDABLE REJECTION: mode=%s factor=%s rejected %zu\n",
                     mode.c_str(), json_num(factor).c_str(),
                     m.budget_rejections);
      }
      table.add_row({m.mode, bench::Table::num(m.factor, 2),
                     std::to_string(m.admitted) + "/" +
                         std::to_string(m.submitted),
                     std::to_string(m.completed),
                     std::to_string(m.budget_rejections),
                     std::to_string(m.deadline_met) + "/" +
                         std::to_string(m.admitted),
                     bench::Table::num(m.spend_total),
                     bench::Table::num(m.overspend_max),
                     bench::Table::num(m.wall_ms, 1)});
      if (!first) json += ",";
      first = false;
      json += "{\"mode\":\"" + m.mode + "\",\"factor\":" + json_num(m.factor) +
              ",\"submitted\":" + std::to_string(m.submitted) +
              ",\"admitted\":" + std::to_string(m.admitted) +
              ",\"completed\":" + std::to_string(m.completed) +
              ",\"budget_rejections\":" + std::to_string(m.budget_rejections) +
              ",\"deadline_met\":" + std::to_string(m.deadline_met) +
              ",\"spend_total\":" + json_num(m.spend_total) +
              ",\"overspend_max\":" + json_num(m.overspend_max) +
              ",\"wall_ms\":" + json_num(m.wall_ms) + "}";
    }
  }

  // Determinism gate: the flagship configuration (exact budget, dbc-time),
  // replayed with tracing, must produce byte-identical traces + narratives.
  const Measurement rep1 =
      measure("budget", 1.0, graphs, baselines, smoke, /*want_trace=*/true);
  const Measurement rep2 =
      measure("budget", 1.0, graphs, baselines, smoke, /*want_trace=*/true);
  const bool deterministic =
      !rep1.trace_jsonl.empty() && rep1.trace_jsonl == rep2.trace_jsonl;

  json += "],\"within_budget\":";
  json += within_budget ? "true" : "false";
  json += ",\"loose_never_rejected\":";
  json += loose_never_rejected ? "true" : "false";
  json += ",\"admitted_complete\":";
  json += admitted_complete ? "true" : "false";
  json += ",\"deterministic\":";
  json += deterministic ? "true" : "false";
  json += "}";

  table.print();
  std::printf("\n%s\n", json.c_str());
  if (FILE* f = std::fopen("BENCH_ECONOMY.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (check) {
    if (!within_budget) {
      std::fprintf(stderr,
                   "CHECK FAILED: an admitted run overspent its budget\n");
      return 1;
    }
    if (!loose_never_rejected) {
      std::fprintf(stderr, "CHECK FAILED: a loosely constrained run was "
                           "rejected as unaffordable\n");
      return 1;
    }
    if (!admitted_complete) {
      std::fprintf(stderr, "CHECK FAILED: an admitted run failed\n");
      return 1;
    }
    if (!deterministic) {
      std::fprintf(stderr,
                   "CHECK FAILED: economy runs are not replay-deterministic\n");
      return 1;
    }
    std::printf(
        "check: ok (admitted within budget, loose constraints admitted, "
        "replay deterministic)\n");
  }
  return 0;
}
