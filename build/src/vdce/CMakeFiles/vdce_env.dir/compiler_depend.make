# Empty compiler generated dependencies file for vdce_env.
# This may be replaced when dependencies are built.
