file(REMOVE_RECURSE
  "CMakeFiles/vdce_env.dir/environment.cpp.o"
  "CMakeFiles/vdce_env.dir/environment.cpp.o.d"
  "CMakeFiles/vdce_env.dir/testbed.cpp.o"
  "CMakeFiles/vdce_env.dir/testbed.cpp.o.d"
  "libvdce_env.a"
  "libvdce_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
