file(REMOVE_RECURSE
  "libvdce_env.a"
)
