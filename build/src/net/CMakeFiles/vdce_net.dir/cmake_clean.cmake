file(REMOVE_RECURSE
  "CMakeFiles/vdce_net.dir/fabric.cpp.o"
  "CMakeFiles/vdce_net.dir/fabric.cpp.o.d"
  "CMakeFiles/vdce_net.dir/topology.cpp.o"
  "CMakeFiles/vdce_net.dir/topology.cpp.o.d"
  "libvdce_net.a"
  "libvdce_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
