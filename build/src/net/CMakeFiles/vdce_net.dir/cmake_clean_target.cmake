file(REMOVE_RECURSE
  "libvdce_net.a"
)
