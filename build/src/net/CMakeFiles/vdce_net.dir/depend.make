# Empty dependencies file for vdce_net.
# This may be replaced when dependencies are built.
