file(REMOVE_RECURSE
  "libvdce_runtime.a"
)
