# Empty compiler generated dependencies file for vdce_runtime.
# This may be replaced when dependencies are built.
