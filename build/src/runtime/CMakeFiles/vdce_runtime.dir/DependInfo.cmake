
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/app_controller.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/app_controller.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/app_controller.cpp.o.d"
  "/root/repo/src/runtime/data_manager.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/data_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/data_manager.cpp.o.d"
  "/root/repo/src/runtime/execution.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/execution.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/execution.cpp.o.d"
  "/root/repo/src/runtime/group_manager.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/group_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/group_manager.cpp.o.d"
  "/root/repo/src/runtime/host_agent.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/host_agent.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/host_agent.cpp.o.d"
  "/root/repo/src/runtime/load_generator.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/load_generator.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/load_generator.cpp.o.d"
  "/root/repo/src/runtime/monitor.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/monitor.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/monitor.cpp.o.d"
  "/root/repo/src/runtime/services.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/services.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/services.cpp.o.d"
  "/root/repo/src/runtime/site_manager.cpp" "src/runtime/CMakeFiles/vdce_runtime.dir/site_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/vdce_runtime.dir/site_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vdce_db.dir/DependInfo.cmake"
  "/root/repo/build/src/afg/CMakeFiles/vdce_afg.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/vdce_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vdce_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklib/CMakeFiles/vdce_tasklib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
