file(REMOVE_RECURSE
  "CMakeFiles/vdce_runtime.dir/app_controller.cpp.o"
  "CMakeFiles/vdce_runtime.dir/app_controller.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/data_manager.cpp.o"
  "CMakeFiles/vdce_runtime.dir/data_manager.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/execution.cpp.o"
  "CMakeFiles/vdce_runtime.dir/execution.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/group_manager.cpp.o"
  "CMakeFiles/vdce_runtime.dir/group_manager.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/host_agent.cpp.o"
  "CMakeFiles/vdce_runtime.dir/host_agent.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/load_generator.cpp.o"
  "CMakeFiles/vdce_runtime.dir/load_generator.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/monitor.cpp.o"
  "CMakeFiles/vdce_runtime.dir/monitor.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/services.cpp.o"
  "CMakeFiles/vdce_runtime.dir/services.cpp.o.d"
  "CMakeFiles/vdce_runtime.dir/site_manager.cpp.o"
  "CMakeFiles/vdce_runtime.dir/site_manager.cpp.o.d"
  "libvdce_runtime.a"
  "libvdce_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
