file(REMOVE_RECURSE
  "CMakeFiles/vdce_predict.dir/model.cpp.o"
  "CMakeFiles/vdce_predict.dir/model.cpp.o.d"
  "libvdce_predict.a"
  "libvdce_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
