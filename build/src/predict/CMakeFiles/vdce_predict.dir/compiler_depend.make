# Empty compiler generated dependencies file for vdce_predict.
# This may be replaced when dependencies are built.
