file(REMOVE_RECURSE
  "libvdce_predict.a"
)
