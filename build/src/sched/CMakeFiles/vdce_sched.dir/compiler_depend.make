# Empty compiler generated dependencies file for vdce_sched.
# This may be replaced when dependencies are built.
