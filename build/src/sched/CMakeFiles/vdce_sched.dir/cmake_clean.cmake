file(REMOVE_RECURSE
  "CMakeFiles/vdce_sched.dir/baselines.cpp.o"
  "CMakeFiles/vdce_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/heft.cpp.o"
  "CMakeFiles/vdce_sched.dir/heft.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/host_selection.cpp.o"
  "CMakeFiles/vdce_sched.dir/host_selection.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/schedule_builder.cpp.o"
  "CMakeFiles/vdce_sched.dir/schedule_builder.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/site_scheduler.cpp.o"
  "CMakeFiles/vdce_sched.dir/site_scheduler.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/support.cpp.o"
  "CMakeFiles/vdce_sched.dir/support.cpp.o.d"
  "CMakeFiles/vdce_sched.dir/types.cpp.o"
  "CMakeFiles/vdce_sched.dir/types.cpp.o.d"
  "libvdce_sched.a"
  "libvdce_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
