
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baselines.cpp" "src/sched/CMakeFiles/vdce_sched.dir/baselines.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/baselines.cpp.o.d"
  "/root/repo/src/sched/heft.cpp" "src/sched/CMakeFiles/vdce_sched.dir/heft.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/heft.cpp.o.d"
  "/root/repo/src/sched/host_selection.cpp" "src/sched/CMakeFiles/vdce_sched.dir/host_selection.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/host_selection.cpp.o.d"
  "/root/repo/src/sched/schedule_builder.cpp" "src/sched/CMakeFiles/vdce_sched.dir/schedule_builder.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/schedule_builder.cpp.o.d"
  "/root/repo/src/sched/site_scheduler.cpp" "src/sched/CMakeFiles/vdce_sched.dir/site_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/site_scheduler.cpp.o.d"
  "/root/repo/src/sched/support.cpp" "src/sched/CMakeFiles/vdce_sched.dir/support.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/support.cpp.o.d"
  "/root/repo/src/sched/types.cpp" "src/sched/CMakeFiles/vdce_sched.dir/types.cpp.o" "gcc" "src/sched/CMakeFiles/vdce_sched.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  "/root/repo/build/src/afg/CMakeFiles/vdce_afg.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vdce_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/vdce_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklib/CMakeFiles/vdce_tasklib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdce_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
