file(REMOVE_RECURSE
  "libvdce_sched.a"
)
