# CMake generated Testfile for 
# Source directory: /root/repo/src/editor
# Build directory: /root/repo/build/src/editor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
