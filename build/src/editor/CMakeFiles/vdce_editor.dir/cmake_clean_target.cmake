file(REMOVE_RECURSE
  "libvdce_editor.a"
)
