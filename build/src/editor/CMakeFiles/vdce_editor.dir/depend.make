# Empty dependencies file for vdce_editor.
# This may be replaced when dependencies are built.
