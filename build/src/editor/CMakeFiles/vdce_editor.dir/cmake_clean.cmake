file(REMOVE_RECURSE
  "CMakeFiles/vdce_editor.dir/app_store.cpp.o"
  "CMakeFiles/vdce_editor.dir/app_store.cpp.o.d"
  "CMakeFiles/vdce_editor.dir/builder.cpp.o"
  "CMakeFiles/vdce_editor.dir/builder.cpp.o.d"
  "CMakeFiles/vdce_editor.dir/dsl.cpp.o"
  "CMakeFiles/vdce_editor.dir/dsl.cpp.o.d"
  "CMakeFiles/vdce_editor.dir/panels.cpp.o"
  "CMakeFiles/vdce_editor.dir/panels.cpp.o.d"
  "libvdce_editor.a"
  "libvdce_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
