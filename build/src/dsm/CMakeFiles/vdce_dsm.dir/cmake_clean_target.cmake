file(REMOVE_RECURSE
  "libvdce_dsm.a"
)
