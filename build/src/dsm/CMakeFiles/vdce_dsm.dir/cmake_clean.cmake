file(REMOVE_RECURSE
  "CMakeFiles/vdce_dsm.dir/dsm.cpp.o"
  "CMakeFiles/vdce_dsm.dir/dsm.cpp.o.d"
  "libvdce_dsm.a"
  "libvdce_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
