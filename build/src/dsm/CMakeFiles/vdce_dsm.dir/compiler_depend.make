# Empty compiler generated dependencies file for vdce_dsm.
# This may be replaced when dependencies are built.
