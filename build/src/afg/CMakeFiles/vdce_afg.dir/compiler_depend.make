# Empty compiler generated dependencies file for vdce_afg.
# This may be replaced when dependencies are built.
