file(REMOVE_RECURSE
  "libvdce_afg.a"
)
