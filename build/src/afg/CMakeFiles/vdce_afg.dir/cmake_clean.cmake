file(REMOVE_RECURSE
  "CMakeFiles/vdce_afg.dir/generate.cpp.o"
  "CMakeFiles/vdce_afg.dir/generate.cpp.o.d"
  "CMakeFiles/vdce_afg.dir/graph.cpp.o"
  "CMakeFiles/vdce_afg.dir/graph.cpp.o.d"
  "CMakeFiles/vdce_afg.dir/levels.cpp.o"
  "CMakeFiles/vdce_afg.dir/levels.cpp.o.d"
  "libvdce_afg.a"
  "libvdce_afg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_afg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
