
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afg/generate.cpp" "src/afg/CMakeFiles/vdce_afg.dir/generate.cpp.o" "gcc" "src/afg/CMakeFiles/vdce_afg.dir/generate.cpp.o.d"
  "/root/repo/src/afg/graph.cpp" "src/afg/CMakeFiles/vdce_afg.dir/graph.cpp.o" "gcc" "src/afg/CMakeFiles/vdce_afg.dir/graph.cpp.o.d"
  "/root/repo/src/afg/levels.cpp" "src/afg/CMakeFiles/vdce_afg.dir/levels.cpp.o" "gcc" "src/afg/CMakeFiles/vdce_afg.dir/levels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
