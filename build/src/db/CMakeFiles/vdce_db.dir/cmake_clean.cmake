file(REMOVE_RECURSE
  "CMakeFiles/vdce_db.dir/resource_perf.cpp.o"
  "CMakeFiles/vdce_db.dir/resource_perf.cpp.o.d"
  "CMakeFiles/vdce_db.dir/site_repository.cpp.o"
  "CMakeFiles/vdce_db.dir/site_repository.cpp.o.d"
  "CMakeFiles/vdce_db.dir/task_constraints.cpp.o"
  "CMakeFiles/vdce_db.dir/task_constraints.cpp.o.d"
  "CMakeFiles/vdce_db.dir/task_perf.cpp.o"
  "CMakeFiles/vdce_db.dir/task_perf.cpp.o.d"
  "CMakeFiles/vdce_db.dir/user_accounts.cpp.o"
  "CMakeFiles/vdce_db.dir/user_accounts.cpp.o.d"
  "libvdce_db.a"
  "libvdce_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
