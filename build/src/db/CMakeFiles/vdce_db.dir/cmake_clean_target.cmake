file(REMOVE_RECURSE
  "libvdce_db.a"
)
