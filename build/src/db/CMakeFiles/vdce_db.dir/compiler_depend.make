# Empty compiler generated dependencies file for vdce_db.
# This may be replaced when dependencies are built.
