
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/resource_perf.cpp" "src/db/CMakeFiles/vdce_db.dir/resource_perf.cpp.o" "gcc" "src/db/CMakeFiles/vdce_db.dir/resource_perf.cpp.o.d"
  "/root/repo/src/db/site_repository.cpp" "src/db/CMakeFiles/vdce_db.dir/site_repository.cpp.o" "gcc" "src/db/CMakeFiles/vdce_db.dir/site_repository.cpp.o.d"
  "/root/repo/src/db/task_constraints.cpp" "src/db/CMakeFiles/vdce_db.dir/task_constraints.cpp.o" "gcc" "src/db/CMakeFiles/vdce_db.dir/task_constraints.cpp.o.d"
  "/root/repo/src/db/task_perf.cpp" "src/db/CMakeFiles/vdce_db.dir/task_perf.cpp.o" "gcc" "src/db/CMakeFiles/vdce_db.dir/task_perf.cpp.o.d"
  "/root/repo/src/db/user_accounts.cpp" "src/db/CMakeFiles/vdce_db.dir/user_accounts.cpp.o" "gcc" "src/db/CMakeFiles/vdce_db.dir/user_accounts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdce_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
