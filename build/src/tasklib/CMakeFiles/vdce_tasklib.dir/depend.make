# Empty dependencies file for vdce_tasklib.
# This may be replaced when dependencies are built.
