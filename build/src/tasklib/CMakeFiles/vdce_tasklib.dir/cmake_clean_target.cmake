file(REMOVE_RECURSE
  "libvdce_tasklib.a"
)
