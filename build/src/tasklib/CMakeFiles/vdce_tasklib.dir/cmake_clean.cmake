file(REMOVE_RECURSE
  "CMakeFiles/vdce_tasklib.dir/image.cpp.o"
  "CMakeFiles/vdce_tasklib.dir/image.cpp.o.d"
  "CMakeFiles/vdce_tasklib.dir/matrix.cpp.o"
  "CMakeFiles/vdce_tasklib.dir/matrix.cpp.o.d"
  "CMakeFiles/vdce_tasklib.dir/registry.cpp.o"
  "CMakeFiles/vdce_tasklib.dir/registry.cpp.o.d"
  "CMakeFiles/vdce_tasklib.dir/signal.cpp.o"
  "CMakeFiles/vdce_tasklib.dir/signal.cpp.o.d"
  "libvdce_tasklib.a"
  "libvdce_tasklib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_tasklib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
