
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasklib/image.cpp" "src/tasklib/CMakeFiles/vdce_tasklib.dir/image.cpp.o" "gcc" "src/tasklib/CMakeFiles/vdce_tasklib.dir/image.cpp.o.d"
  "/root/repo/src/tasklib/matrix.cpp" "src/tasklib/CMakeFiles/vdce_tasklib.dir/matrix.cpp.o" "gcc" "src/tasklib/CMakeFiles/vdce_tasklib.dir/matrix.cpp.o.d"
  "/root/repo/src/tasklib/registry.cpp" "src/tasklib/CMakeFiles/vdce_tasklib.dir/registry.cpp.o" "gcc" "src/tasklib/CMakeFiles/vdce_tasklib.dir/registry.cpp.o.d"
  "/root/repo/src/tasklib/signal.cpp" "src/tasklib/CMakeFiles/vdce_tasklib.dir/signal.cpp.o" "gcc" "src/tasklib/CMakeFiles/vdce_tasklib.dir/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vdce_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdce_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
