# CMake generated Testfile for 
# Source directory: /root/repo/src/tasklib
# Build directory: /root/repo/build/src/tasklib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
