# Empty dependencies file for vdce_common.
# This may be replaced when dependencies are built.
