file(REMOVE_RECURSE
  "libvdce_common.a"
)
