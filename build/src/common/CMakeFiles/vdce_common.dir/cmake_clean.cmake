file(REMOVE_RECURSE
  "CMakeFiles/vdce_common.dir/logging.cpp.o"
  "CMakeFiles/vdce_common.dir/logging.cpp.o.d"
  "CMakeFiles/vdce_common.dir/rng.cpp.o"
  "CMakeFiles/vdce_common.dir/rng.cpp.o.d"
  "CMakeFiles/vdce_common.dir/stats.cpp.o"
  "CMakeFiles/vdce_common.dir/stats.cpp.o.d"
  "CMakeFiles/vdce_common.dir/strings.cpp.o"
  "CMakeFiles/vdce_common.dir/strings.cpp.o.d"
  "libvdce_common.a"
  "libvdce_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
