file(REMOVE_RECURSE
  "CMakeFiles/vdce_sim.dir/engine.cpp.o"
  "CMakeFiles/vdce_sim.dir/engine.cpp.o.d"
  "libvdce_sim.a"
  "libvdce_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdce_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
