# Empty dependencies file for vdce_sim.
# This may be replaced when dependencies are built.
