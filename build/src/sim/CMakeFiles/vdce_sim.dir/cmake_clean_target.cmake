file(REMOVE_RECURSE
  "libvdce_sim.a"
)
