file(REMOVE_RECURSE
  "CMakeFiles/bench_levels_ablation.dir/bench_levels_ablation.cpp.o"
  "CMakeFiles/bench_levels_ablation.dir/bench_levels_ablation.cpp.o.d"
  "bench_levels_ablation"
  "bench_levels_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_levels_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
