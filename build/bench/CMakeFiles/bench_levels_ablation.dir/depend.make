# Empty dependencies file for bench_levels_ablation.
# This may be replaced when dependencies are built.
