# Empty dependencies file for bench_site_selection_k.
# This may be replaced when dependencies are built.
