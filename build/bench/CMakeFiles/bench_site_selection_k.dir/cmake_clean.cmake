file(REMOVE_RECURSE
  "CMakeFiles/bench_site_selection_k.dir/bench_site_selection_k.cpp.o"
  "CMakeFiles/bench_site_selection_k.dir/bench_site_selection_k.cpp.o.d"
  "bench_site_selection_k"
  "bench_site_selection_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_site_selection_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
