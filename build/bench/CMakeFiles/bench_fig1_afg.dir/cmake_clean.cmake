file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_afg.dir/bench_fig1_afg.cpp.o"
  "CMakeFiles/bench_fig1_afg.dir/bench_fig1_afg.cpp.o.d"
  "bench_fig1_afg"
  "bench_fig1_afg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_afg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
