file(REMOVE_RECURSE
  "CMakeFiles/bench_contention.dir/bench_contention.cpp.o"
  "CMakeFiles/bench_contention.dir/bench_contention.cpp.o.d"
  "bench_contention"
  "bench_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
