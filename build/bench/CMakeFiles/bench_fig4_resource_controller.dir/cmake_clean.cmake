file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_resource_controller.dir/bench_fig4_resource_controller.cpp.o"
  "CMakeFiles/bench_fig4_resource_controller.dir/bench_fig4_resource_controller.cpp.o.d"
  "bench_fig4_resource_controller"
  "bench_fig4_resource_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_resource_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
