# Empty compiler generated dependencies file for bench_fig4_resource_controller.
# This may be replaced when dependencies are built.
