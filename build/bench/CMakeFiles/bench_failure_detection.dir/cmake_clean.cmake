file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_detection.dir/bench_failure_detection.cpp.o"
  "CMakeFiles/bench_failure_detection.dir/bench_failure_detection.cpp.o.d"
  "bench_failure_detection"
  "bench_failure_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
