# Empty dependencies file for bench_failure_detection.
# This may be replaced when dependencies are built.
