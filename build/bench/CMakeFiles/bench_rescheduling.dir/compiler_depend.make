# Empty compiler generated dependencies file for bench_rescheduling.
# This may be replaced when dependencies are built.
