file(REMOVE_RECURSE
  "CMakeFiles/bench_rescheduling.dir/bench_rescheduling.cpp.o"
  "CMakeFiles/bench_rescheduling.dir/bench_rescheduling.cpp.o.d"
  "bench_rescheduling"
  "bench_rescheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rescheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
