# Empty compiler generated dependencies file for bench_monitoring_overhead.
# This may be replaced when dependencies are built.
