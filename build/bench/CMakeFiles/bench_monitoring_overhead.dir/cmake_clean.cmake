file(REMOVE_RECURSE
  "CMakeFiles/bench_monitoring_overhead.dir/bench_monitoring_overhead.cpp.o"
  "CMakeFiles/bench_monitoring_overhead.dir/bench_monitoring_overhead.cpp.o.d"
  "bench_monitoring_overhead"
  "bench_monitoring_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitoring_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
