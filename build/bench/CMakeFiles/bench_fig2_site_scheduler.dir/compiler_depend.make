# Empty compiler generated dependencies file for bench_fig2_site_scheduler.
# This may be replaced when dependencies are built.
