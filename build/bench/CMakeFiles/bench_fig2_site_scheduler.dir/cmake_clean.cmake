file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_site_scheduler.dir/bench_fig2_site_scheduler.cpp.o"
  "CMakeFiles/bench_fig2_site_scheduler.dir/bench_fig2_site_scheduler.cpp.o.d"
  "bench_fig2_site_scheduler"
  "bench_fig2_site_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_site_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
