# Empty dependencies file for bench_schedule_length.
# This may be replaced when dependencies are built.
