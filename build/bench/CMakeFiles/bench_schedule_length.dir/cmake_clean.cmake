file(REMOVE_RECURSE
  "CMakeFiles/bench_schedule_length.dir/bench_schedule_length.cpp.o"
  "CMakeFiles/bench_schedule_length.dir/bench_schedule_length.cpp.o.d"
  "bench_schedule_length"
  "bench_schedule_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
