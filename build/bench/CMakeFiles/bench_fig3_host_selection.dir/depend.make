# Empty dependencies file for bench_fig3_host_selection.
# This may be replaced when dependencies are built.
