file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_host_selection.dir/bench_fig3_host_selection.cpp.o"
  "CMakeFiles/bench_fig3_host_selection.dir/bench_fig3_host_selection.cpp.o.d"
  "bench_fig3_host_selection"
  "bench_fig3_host_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_host_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
