file(REMOVE_RECURSE
  "CMakeFiles/bench_dsm.dir/bench_dsm.cpp.o"
  "CMakeFiles/bench_dsm.dir/bench_dsm.cpp.o.d"
  "bench_dsm"
  "bench_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
