# Empty dependencies file for bench_dsm.
# This may be replaced when dependencies are built.
