file(REMOVE_RECURSE
  "CMakeFiles/bench_data_manager.dir/bench_data_manager.cpp.o"
  "CMakeFiles/bench_data_manager.dir/bench_data_manager.cpp.o.d"
  "bench_data_manager"
  "bench_data_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
