# Empty compiler generated dependencies file for bench_data_manager.
# This may be replaced when dependencies are built.
