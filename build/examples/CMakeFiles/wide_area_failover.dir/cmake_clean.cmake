file(REMOVE_RECURSE
  "CMakeFiles/wide_area_failover.dir/wide_area_failover.cpp.o"
  "CMakeFiles/wide_area_failover.dir/wide_area_failover.cpp.o.d"
  "wide_area_failover"
  "wide_area_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
