# Empty dependencies file for wide_area_failover.
# This may be replaced when dependencies are built.
