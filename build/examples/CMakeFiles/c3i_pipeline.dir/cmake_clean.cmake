file(REMOVE_RECURSE
  "CMakeFiles/c3i_pipeline.dir/c3i_pipeline.cpp.o"
  "CMakeFiles/c3i_pipeline.dir/c3i_pipeline.cpp.o.d"
  "c3i_pipeline"
  "c3i_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3i_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
