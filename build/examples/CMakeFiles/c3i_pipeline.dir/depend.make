# Empty dependencies file for c3i_pipeline.
# This may be replaced when dependencies are built.
