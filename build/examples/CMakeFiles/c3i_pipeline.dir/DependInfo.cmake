
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/c3i_pipeline.cpp" "examples/CMakeFiles/c3i_pipeline.dir/c3i_pipeline.cpp.o" "gcc" "examples/CMakeFiles/c3i_pipeline.dir/c3i_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vdce/CMakeFiles/vdce_env.dir/DependInfo.cmake"
  "/root/repo/build/src/editor/CMakeFiles/vdce_editor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vdce_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vdce_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/vdce_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/afg/CMakeFiles/vdce_afg.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/vdce_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklib/CMakeFiles/vdce_tasklib.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vdce_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
