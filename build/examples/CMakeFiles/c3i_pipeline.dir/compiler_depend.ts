# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for c3i_pipeline.
