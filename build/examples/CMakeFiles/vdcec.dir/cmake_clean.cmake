file(REMOVE_RECURSE
  "CMakeFiles/vdcec.dir/vdcec.cpp.o"
  "CMakeFiles/vdcec.dir/vdcec.cpp.o.d"
  "vdcec"
  "vdcec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdcec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
