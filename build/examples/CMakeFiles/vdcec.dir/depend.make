# Empty dependencies file for vdcec.
# This may be replaced when dependencies are built.
