file(REMOVE_RECURSE
  "CMakeFiles/linear_equation_solver.dir/linear_equation_solver.cpp.o"
  "CMakeFiles/linear_equation_solver.dir/linear_equation_solver.cpp.o.d"
  "linear_equation_solver"
  "linear_equation_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_equation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
