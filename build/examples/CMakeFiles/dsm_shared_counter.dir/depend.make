# Empty dependencies file for dsm_shared_counter.
# This may be replaced when dependencies are built.
