file(REMOVE_RECURSE
  "CMakeFiles/dsm_shared_counter.dir/dsm_shared_counter.cpp.o"
  "CMakeFiles/dsm_shared_counter.dir/dsm_shared_counter.cpp.o.d"
  "dsm_shared_counter"
  "dsm_shared_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_shared_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
