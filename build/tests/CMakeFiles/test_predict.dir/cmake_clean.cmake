file(REMOVE_RECURSE
  "CMakeFiles/test_predict.dir/test_predict.cpp.o"
  "CMakeFiles/test_predict.dir/test_predict.cpp.o.d"
  "test_predict"
  "test_predict.pdb"
  "test_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
