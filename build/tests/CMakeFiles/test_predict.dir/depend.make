# Empty dependencies file for test_predict.
# This may be replaced when dependencies are built.
