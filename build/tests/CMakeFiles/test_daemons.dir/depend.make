# Empty dependencies file for test_daemons.
# This may be replaced when dependencies are built.
