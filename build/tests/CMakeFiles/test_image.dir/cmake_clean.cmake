file(REMOVE_RECURSE
  "CMakeFiles/test_image.dir/test_image.cpp.o"
  "CMakeFiles/test_image.dir/test_image.cpp.o.d"
  "test_image"
  "test_image.pdb"
  "test_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
