file(REMOVE_RECURSE
  "CMakeFiles/test_editor.dir/test_editor.cpp.o"
  "CMakeFiles/test_editor.dir/test_editor.cpp.o.d"
  "test_editor"
  "test_editor.pdb"
  "test_editor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
