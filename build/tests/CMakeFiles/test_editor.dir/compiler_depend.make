# Empty compiler generated dependencies file for test_editor.
# This may be replaced when dependencies are built.
