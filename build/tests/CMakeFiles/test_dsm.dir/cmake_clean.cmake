file(REMOVE_RECURSE
  "CMakeFiles/test_dsm.dir/test_dsm.cpp.o"
  "CMakeFiles/test_dsm.dir/test_dsm.cpp.o.d"
  "test_dsm"
  "test_dsm.pdb"
  "test_dsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
