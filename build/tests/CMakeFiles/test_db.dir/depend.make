# Empty dependencies file for test_db.
# This may be replaced when dependencies are built.
