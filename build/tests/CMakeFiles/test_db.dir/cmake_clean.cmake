file(REMOVE_RECURSE
  "CMakeFiles/test_db.dir/test_db.cpp.o"
  "CMakeFiles/test_db.dir/test_db.cpp.o.d"
  "test_db"
  "test_db.pdb"
  "test_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
