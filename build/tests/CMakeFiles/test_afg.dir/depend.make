# Empty dependencies file for test_afg.
# This may be replaced when dependencies are built.
