file(REMOVE_RECURSE
  "CMakeFiles/test_afg.dir/test_afg.cpp.o"
  "CMakeFiles/test_afg.dir/test_afg.cpp.o.d"
  "test_afg"
  "test_afg.pdb"
  "test_afg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_afg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
