# Empty compiler generated dependencies file for test_tasklib.
# This may be replaced when dependencies are built.
