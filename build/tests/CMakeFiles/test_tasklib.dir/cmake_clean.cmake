file(REMOVE_RECURSE
  "CMakeFiles/test_tasklib.dir/test_tasklib.cpp.o"
  "CMakeFiles/test_tasklib.dir/test_tasklib.cpp.o.d"
  "test_tasklib"
  "test_tasklib.pdb"
  "test_tasklib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasklib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
