# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_afg[1]_include.cmake")
include("/root/repo/build/tests/test_tasklib[1]_include.cmake")
include("/root/repo/build/tests/test_predict[1]_include.cmake")
include("/root/repo/build/tests/test_editor[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_environment[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_daemons[1]_include.cmake")
